"""Cross-process shared-limit control plane for the process backend.

The paper charges every issued query against the server's interface
limits, but a plain pickled source copy (the process executor's default)
gives each pool worker its *own* ``QueryBudget``/``DailyRateLimit`` --
exact accounting, the repo's core determinism contract, silently breaks
across processes.  This module closes that gap:

* :class:`LimitCoordinator` starts a lightweight coordinator process (a
  :class:`multiprocessing.managers.BaseManager`) whose
  :class:`_ControlPlane` owns the **authoritative**
  :class:`~repro.server.limits.QueryBudget`,
  :class:`~repro.server.limits.DailyRateLimit`,
  :class:`~repro.server.limits.SimulatedClock` and
  :class:`~repro.server.stats.QueryStats` objects;
* workers receive thin :class:`SharedLimitClient` / :class:`SharedStats`
  / :class:`SharedClock` proxies -- the shared-state counterparts of the
  ``LocklessPickle`` per-copy paths -- that admit, tick and account
  through the plane with **exactly-once** semantics (the authoritative
  object's own lock serialises admissions, no matter how many processes
  race);
* the coordinator can also host a
  :class:`~repro.crawl.rebalance.WorkStealingScheduler` or
  :class:`~repro.crawl.rebalance.SubtreeScheduler`
  (:meth:`LimitCoordinator.make_scheduler`), which is what lets idle
  pool workers steal regions and subtree shards *across process
  boundaries* with exact observed-cost feedback.

Ownership and write-back
------------------------
:meth:`LimitCoordinator.share_sources` walks a source stack (servers,
caching clients, latency wrappers), moves each limit / clock / stats
object's state into the plane once (object identity is preserved: two
servers sharing one budget share one authoritative copy) and returns
rewired shallow clones that are safe to pickle into pool workers.  The
caller's original objects are never mutated during the crawl; after it,
:meth:`LimitCoordinator.writeback` copies the authoritative counters
back into them, so ``budget.used`` and ``server.stats.queries`` read
exactly what was charged -- even when the crawl died on exhaustion.

Client-side caches are deliberately *not* shared: a
:class:`~repro.server.client.CachingClient` stays a per-worker copy
(distinct regions issue distinct queries, so per-worker caches change
nothing about the total charged cost), while the server-side admission
and accounting behind it become globally exact.

Lease-batched admission
-----------------------
Exactly-once admission used to cost one coordinator round trip per
query -- interface-layer chatter, the very cost the hidden-web
literature says dominates real deployments.  The plane now amortises
it two ways, without giving up a single unit of exactness:

* **Budget leases.**  :meth:`SharedLimitClient.lease` admits query
  budget in chunks (:class:`~repro.server.limits.LimitLease`, sized by
  the executor from the :class:`~repro.crawl.rebalance.CostEstimator`'s
  per-region estimates): ``admit()`` consumes the local lease at zero
  round trips and only returns to the coordinator when the chunk runs
  dry.  Unused units flow back on region completion (the runtime's
  region-boundary flush) and on exhaustion, so a completing crawl
  charges exactly the queries it issued; a *refused* budget is
  terminally exhausted and reads fully charged -- byte-for-byte the
  observable state per-query admission leaves behind.  The one
  semantic a chunk buys away: units leased to one worker are invisible
  to the others until its next flush, so a crawl whose demand lands
  within ``fleet x chunk`` of the budget can be refused where strictly
  per-query admission would have squeaked through (admission is
  *conservative*, never over).  The executor therefore clamps the
  auto-sized chunk against the budgets' remaining headroom
  (:meth:`LimitCoordinator.clamp_lease_chunk`): tight budgets degrade
  to exact per-query admission, and batching only engages when the
  budget dwarfs what the fleet could strand.
* **Buffered stats.**  :class:`SharedStats` accumulates recordings
  locally (phases attributed per worker) and ships the aggregate as
  one :meth:`~repro.server.stats.QueryStats.merge_counts` delta per
  region instead of one call per query.

The chatter itself is measured: the plane counts every worker-originated
round trip (admission, leases, releases, clock ticks, stats deltas,
progress events -- not the parent's own polling or write-back reads)
and write-back lands the fleet-wide total in each caller-side
:attr:`~repro.server.stats.QueryStats.round_trips`, which is what the
benchmarks gate on.
"""

from __future__ import annotations

import copy
import threading
from multiprocessing.managers import BaseManager

from repro.crawl.rebalance import CostEstimator
from repro.exceptions import QueryBudgetExhausted
from repro.server.limits import (
    DailyRateLimit,
    LimitLease,
    QueryBudget,
    QueryLimit,
    SimulatedClock,
)
from repro.server.response import QueryResponse
from repro.server.server import TopKServer
from repro.server.stats import QueryStats

__all__ = [
    "DEFAULT_LEASE_CHUNK",
    "MAX_LEASE_CHUNK",
    "LimitCoordinator",
    "SharedLimitClient",
    "SharedBudget",
    "SharedDailyLimit",
    "SharedClock",
    "SharedStats",
    "TenantLimitRegistry",
    "lease_chunk_for_plan",
]

#: Lease chunk used when the estimator knows nothing about the plan.
DEFAULT_LEASE_CHUNK = 32

#: Ceiling on the lease chunk, however expensive regions look: a huge
#: chunk parked in one worker starves the rest of a tight budget for
#: longer than the round trips it saves are worth.
MAX_LEASE_CHUNK = 256


def lease_chunk_for_plan(plan, estimator: CostEstimator | None) -> int:
    """Size the admission lease chunk from per-region cost estimates.

    The ideal chunk covers about one region's queries: the worker then
    pays ~one lease round trip per region instead of one per query,
    and whatever the region leaves unused is returned at its boundary.
    An estimator that actually knows something (observed costs or
    priors) supplies the mean per-region estimate, clamped to
    ``[1, MAX_LEASE_CHUNK]``; a blank estimator falls back to
    :data:`DEFAULT_LEASE_CHUNK`.
    """
    keys = [
        (session, index)
        for session, bundle in enumerate(plan.bundles)
        for index in range(len(bundle))
    ]
    if estimator is None or not keys:
        return DEFAULT_LEASE_CHUNK
    state = estimator.export_state()
    if not state["priors"] and state["prior"] == 1.0:
        # A flat default estimator: every estimate is the meaningless
        # 1.0 prior, and a 1-query chunk would disable batching.
        return DEFAULT_LEASE_CHUNK
    mean = sum(estimator.estimate(key) for key in keys) / len(keys)
    return max(1, min(MAX_LEASE_CHUNK, round(mean)))


class TenantLimitRegistry:
    """Per-tenant admission limits, one authoritative set per tenant.

    The multi-tenant counterpart of the paper's interface limits: every
    tenant of the job service gets its *own*
    :class:`~repro.server.limits.QueryBudget` and (optionally)
    :class:`~repro.server.limits.DailyRateLimit`, so one tenant
    exhausting a quota can never refuse another tenant's queries.  The
    registry owns the objects; every source serving a tenant's jobs
    references the same instances, which is what makes per-tenant
    charges exact across however many jobs and workers the tenant runs
    at once (the limits' own locks serialise admission).

    On an in-process fleet the objects are shared by reference; for a
    process fleet, :meth:`share` rehosts a tenant's limits on a
    :class:`LimitCoordinator` so admission stays exactly-once across
    the pool -- same objects, same registry bookkeeping.

    Examples
    --------
    Two tenants, separate budgets, zero cross-tenant admission::

        registry = TenantLimitRegistry()
        registry.register("acme", budget=500)
        registry.register("umbrella", budget=80, per_day=40)
        server = TopKServer(
            dataset, k, limits=registry.limits("acme")
        )
    """

    def __init__(self, *, clock: SimulatedClock | None = None):
        self._lock = threading.Lock()
        self._clock = clock if clock is not None else SimulatedClock()
        self._budgets: dict[str, QueryBudget] = {}
        self._dailies: dict[str, DailyRateLimit] = {}
        self._quotas: dict[str, tuple[int | None, int | None]] = {}

    @property
    def clock(self) -> SimulatedClock:
        """The one simulated clock every tenant's daily quota ticks on."""
        return self._clock

    def register(
        self,
        tenant: str,
        *,
        budget: int | None = None,
        per_day: int | None = None,
    ) -> None:
        """Create ``tenant``'s limits (idempotent for equal quotas).

        ``budget`` caps the tenant's total queries across all of its
        jobs; ``per_day`` its daily quota on the registry clock; either
        may be ``None`` for unlimited.  Re-registering with the same
        quotas is a no-op (a restarted server re-declares its tenants);
        different quotas raise :class:`ValueError` -- changing a live
        tenant's quota mid-flight would corrupt its exact charge.
        """
        if budget is not None and budget < 1:
            raise ValueError(f"budget must be positive, got {budget}")
        if per_day is not None and per_day < 1:
            raise ValueError(f"per_day must be positive, got {per_day}")
        with self._lock:
            quota = (budget, per_day)
            existing = self._quotas.get(tenant)
            if existing is not None:
                if existing != quota:
                    raise ValueError(
                        f"tenant {tenant!r} is already registered with "
                        f"quota {existing}, not {quota}"
                    )
                return
            self._quotas[tenant] = quota
            if budget is not None:
                self._budgets[tenant] = QueryBudget(budget)
            if per_day is not None:
                self._dailies[tenant] = DailyRateLimit(
                    per_day, self._clock
                )

    def _known(self, tenant: str) -> None:
        if tenant not in self._quotas:
            known = ", ".join(sorted(self._quotas)) or "(none)"
            raise KeyError(
                f"unknown tenant {tenant!r}; registered: {known}"
            )

    def tenants(self) -> list[str]:
        """Registered tenant names, sorted."""
        with self._lock:
            return sorted(self._quotas)

    def limits(self, tenant: str) -> list[QueryLimit]:
        """The tenant's limit objects, for a server's ``limits=``.

        Always the same instances for the same tenant -- hand them to
        every source that serves the tenant's jobs and the charges add
        up in one place.
        """
        with self._lock:
            self._known(tenant)
            limits: list[QueryLimit] = []
            if tenant in self._budgets:
                limits.append(self._budgets[tenant])
            if tenant in self._dailies:
                limits.append(self._dailies[tenant])
            return limits

    def budget(self, tenant: str) -> QueryBudget | None:
        """The tenant's budget object (``None`` if unlimited)."""
        with self._lock:
            self._known(tenant)
            return self._budgets.get(tenant)

    def charges(self) -> dict[str, dict]:
        """Every tenant's exact charge so far, as ``state()`` snapshots.

        ``{tenant: {"budget": state | None, "daily": state | None}}`` --
        JSON-able, which is how the job service persists per-tenant
        admission state across a server death.
        """
        with self._lock:
            return {
                tenant: {
                    "budget": (
                        self._budgets[tenant].state()
                        if tenant in self._budgets
                        else None
                    ),
                    "daily": (
                        self._dailies[tenant].state()
                        if tenant in self._dailies
                        else None
                    ),
                }
                for tenant in self._quotas
            }

    def restore(self, tenant: str, charge: dict) -> bool:
        """Restore a tenant's persisted charge (same-window semantics).

        A stored budget charge counts only while it belongs to the
        *same admission window*: the stored ``max_queries`` still
        matches the registered quota and the window was not already
        refused.  A changed quota or an exhausted window is the quota
        *reset* -- the fresh limits stand untouched, exactly the CLI's
        ``--resume`` contract.  Returns whether anything was restored.
        """
        with self._lock:
            self._known(tenant)
            quota_budget, quota_daily = self._quotas[tenant]
            restored = False
            stored = charge.get("budget")
            budget = self._budgets.get(tenant)
            if stored is not None and budget is not None:
                same_window = int(
                    stored.get("max_queries", -1)
                ) == quota_budget and not stored.get("refused", False)
                if same_window:
                    budget.restore_state(stored)
                    restored = True
            stored = charge.get("daily")
            daily = self._dailies.get(tenant)
            if stored is not None and daily is not None:
                if int(stored.get("per_day", -1)) == quota_daily:
                    daily.restore_state(stored)
                    restored = True
            return restored

    def share(self, tenant: str, coordinator: "LimitCoordinator") -> list:
        """The tenant's limits as coordinator-hosted shared stubs.

        For process fleets: each limit object is rehosted on
        ``coordinator`` (identity-memoised, so repeated calls return
        the same stubs) and admission happens in the coordinator
        process; ``coordinator.writeback()`` lands the exact charges
        back in the registry's objects.
        """
        return [coordinator.share(limit) for limit in self.limits(tenant)]

    def pull_shared(self, tenant: str, stubs: list) -> dict:
        """Land a shared tenant's authoritative charge in the registry.

        The per-commit counterpart of ``coordinator.writeback()``: each
        stub in ``stubs`` (from :meth:`share`, same order as
        :meth:`limits`) is flushed -- returning any parked lease
        headroom -- and its authoritative state is restored into the
        registry's local objects, so in-process reads
        (:meth:`charges`, :meth:`budget`) stay exact while the fleet
        runs on another process.  Returns the tenant's
        :meth:`charges`-shaped snapshot ``{"budget": ..., "daily":
        ...}``, which is what the job service persists at each region
        commit.
        """
        states = []
        for stub in stubs:
            stub.flush()
            states.append(stub.state())
        with self._lock:
            self._known(tenant)
            index = 0
            if tenant in self._budgets:
                self._budgets[tenant].restore_state(states[index])
                index += 1
            if tenant in self._dailies:
                self._dailies[tenant].restore_state(states[index])
                index += 1
            if index != len(states):
                raise ValueError(
                    f"tenant {tenant!r} has {index} registered limits "
                    f"but {len(states)} shared stubs"
                )
            return {
                "budget": (
                    self._budgets[tenant].state()
                    if tenant in self._budgets
                    else None
                ),
                "daily": (
                    self._dailies[tenant].state()
                    if tenant in self._dailies
                    else None
                ),
            }


class _ControlPlane:
    """The coordinator-process side: owns the authoritative objects.

    Lives inside the manager process; every public method is called
    through a proxy, each client connection served by its own manager
    thread.  Registration happens from the parent before the pool
    starts; after that the handle table is read-only, and all mutation
    goes through the owned objects' internal locks -- which is exactly
    the exactly-once admission contract: ``admit`` on one authoritative
    limit is atomic no matter how many worker processes race.

    Admission refusals are returned as values, not raised: a remote
    exception would be re-pickled by the manager machinery, while the
    value path lets :class:`SharedLimitClient` raise a faithful
    :class:`~repro.exceptions.QueryBudgetExhausted` (message and
    ``issued`` intact) in the worker.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._objects: dict[int, object] = {}
        self._next_handle = 0
        self._events: list[tuple] = []
        self._round_trips = 0

    def _add(self, obj) -> int:
        with self._lock:
            handle = self._next_handle
            self._next_handle += 1
            self._objects[handle] = obj
            return handle

    def _get(self, handle: int):
        with self._lock:
            return self._objects[handle]

    def _count(self) -> None:
        # One worker-originated round trip.  Registration, the parent's
        # event polling and state reads (write-back, telemetry) are not
        # counted: the metric is the admission/accounting chatter that
        # lease batching exists to shrink, so it must not move with how
        # often a monitor polls.
        with self._lock:
            self._round_trips += 1

    def round_trips(self) -> int:
        """Worker-originated round trips served so far (see _count)."""
        with self._lock:
            return self._round_trips

    # ------------------------------------------------------------------
    # Registration (parent only, before workers exist)
    # ------------------------------------------------------------------
    def add_budget(self, state: dict) -> int:
        """Own a budget seeded from a ``QueryBudget.state()`` snapshot."""
        budget = QueryBudget(int(state["max_queries"]))
        budget.restore_state(state)
        return self._add(budget)

    def add_clock(self, state: dict) -> int:
        """Own a clock seeded from a ``SimulatedClock.state()`` snapshot."""
        clock = SimulatedClock(int(state["day"]))
        return self._add(clock)

    def add_daily(self, state: dict, clock_handle: int) -> int:
        """Own a daily limit ticking against an already-owned clock.

        The limit and its clock live in the same (coordinator) process
        and reference each other directly -- no nested proxies.
        """
        limit = DailyRateLimit(int(state["per_day"]), self._get(clock_handle))
        limit.restore_state(state)
        return self._add(limit)

    def add_stats(self, state: dict) -> int:
        """Own a stats sink seeded from a ``QueryStats.state()`` snapshot."""
        stats = QueryStats()
        stats.restore_state(state)
        return self._add(stats)

    # ------------------------------------------------------------------
    # Admission and accounting (called from every worker)
    # ------------------------------------------------------------------
    def lease(self, handle: int, n: int) -> tuple[int, str, int]:
        """Admit up to ``n`` queries against an owned limit, atomically.

        Returns ``(granted, "", 0)`` on success -- ``granted`` units
        are charged and held by the caller until consumed or released
        -- and ``(0, message, issued)`` on refusal, so
        :class:`SharedLimitClient` can raise a faithful
        :class:`~repro.exceptions.QueryBudgetExhausted` in the worker.
        ``n == 1`` is exactly the old per-query ``admit`` round trip.
        """
        self._count()
        try:
            lease = self._get(handle).lease(n)
        except QueryBudgetExhausted as exc:
            return (0, str(exc), exc.issued)
        return (lease.granted, "", 0)

    def release(self, handle: int, unused: int) -> None:
        """Return a lease's unused units to an owned limit."""
        self._count()
        if unused <= 0:
            return
        self._get(handle).release(LimitLease(unused))

    def object_state(self, handle: int) -> dict:
        """The ``state()`` snapshot of any owned object.

        Stats snapshots additionally carry the plane's fleet-wide
        round-trip counter (accumulated on top of whatever the caller's
        stats already recorded), which is how ``round_trips`` reaches
        the caller's own objects at write-back.
        """
        obj = self._get(handle)
        state = obj.state()
        if isinstance(obj, QueryStats):
            state["round_trips"] = (
                int(state.get("round_trips", 0)) + self.round_trips()
            )
        return state

    def clock_day(self, handle: int) -> int:
        """Current day of an owned clock (a read; not counted)."""
        return self._get(handle).day

    def clock_sleep(self, handle: int) -> int:
        """Advance an owned clock to the next day; returns its index."""
        self._count()
        return self._get(handle).sleep_until_next_day()

    def daily_used_today(self, handle: int) -> int:
        """``used_today`` of an owned daily limit (a read; not counted,
        like every other telemetry read -- see :meth:`_count`)."""
        return self._get(handle).used_today

    def daily_remaining_today(self, handle: int) -> int:
        """``remaining_today`` of an owned daily limit (uncounted)."""
        return self._get(handle).remaining_today

    def stats_record(self, handle: int, overflow: bool, tuples: int) -> None:
        """Account one answered query into an owned stats object."""
        self._count()
        self._get(handle).record_counts(overflow, tuples)

    def stats_merge(self, handle: int, delta: dict) -> None:
        """Fold a worker's buffered stats delta into an owned object.

        One round trip lands many recordings (see
        :meth:`SharedStats.flush`); the owned object's lock keeps the
        merge atomic against racing workers.
        """
        self._count()
        self._get(handle).merge_counts(delta)

    # ------------------------------------------------------------------
    # Progress event relay (workers push, the parent drains)
    # ------------------------------------------------------------------
    def push_event(self, event: tuple) -> None:
        """Queue one progress event for the parent to collect."""
        with self._lock:
            self._round_trips += 1
            self._events.append(event)

    def pop_events(self) -> list[tuple]:
        """Drain the queued progress events (each returned once)."""
        with self._lock:
            events = self._events
            self._events = []
            return events


def _make_worksteal_scheduler(bundles, estimator_state, completed=None):
    # Manager-side factory: rebuild the caller's estimator knowledge
    # from its export_state() snapshot (the object itself holds a lock
    # and cannot travel).  ``completed`` maps a resumed crawl's
    # already-finished plan positions to their exact costs.
    from repro.crawl.rebalance import WorkStealingScheduler

    estimator = CostEstimator(**estimator_state) if estimator_state else None
    return WorkStealingScheduler(bundles, estimator, completed)


def _make_subtree_scheduler(bundles, estimator_state, completed=None):
    from repro.crawl.rebalance import SubtreeScheduler

    estimator = CostEstimator(**estimator_state) if estimator_state else None
    return SubtreeScheduler(bundles, estimator, completed)


class _CoordinatorManager(BaseManager):
    """The manager hosting one control plane and optional schedulers."""


_CoordinatorManager.register("ControlPlane", _ControlPlane)
_CoordinatorManager.register(
    "WorkStealingScheduler", _make_worksteal_scheduler
)
_CoordinatorManager.register("SubtreeScheduler", _make_subtree_scheduler)


# ----------------------------------------------------------------------
# Worker-side stubs
# ----------------------------------------------------------------------
class SharedLimitClient(QueryLimit):
    """A :class:`QueryLimit` admitting through the control plane.

    The worker-side counterpart of one coordinator-owned limit: thin
    (a proxy plus a handle), picklable into pool workers, and exact --
    an ``admit()`` either charges the single authoritative counter or
    raises :class:`~repro.exceptions.QueryBudgetExhausted` with the
    authoritative message and ``issued`` count.

    With ``lease_chunk > 1`` the client admits in batches: one
    :meth:`lease` round trip charges a chunk up front, subsequent
    ``admit()`` calls consume it locally at zero round trips, and
    :meth:`flush` returns whatever a finished region left unused (the
    runtime calls it at every region boundary).  ``lease_chunk == 1``
    (the default) is exactly the classic per-query protocol.  A stub
    is a per-worker object; pickling it hands the clone a fresh empty
    lease -- held units never travel, so they can never double-spend.
    """

    def __init__(self, plane, handle: int, *, lease_chunk: int = 1):
        self._plane = plane
        self._handle = handle
        self.lease_chunk = lease_chunk
        self._lease: LimitLease | None = None
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        # The held lease and the lock stay home: the original keeps
        # (and eventually flushes) its unused units, while the clone
        # starts empty -- exactly-once accounting either way.
        state = self.__dict__.copy()
        state["_lease"] = None
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def admit(self) -> None:
        with self._lock:
            if self._lease is not None and self._lease.take():
                return
            self.lease(max(1, int(self.lease_chunk)))
            self._lease.take()

    def lease(self, n: int) -> LimitLease:
        """Fetch a fresh chunk of ``n`` admissions from the plane.

        One coordinator round trip charges up to ``n`` units against
        the authoritative limit and installs them as the client's local
        lease; raises a faithful
        :class:`~repro.exceptions.QueryBudgetExhausted` (authoritative
        message and ``issued`` count) when nothing remains.  Called
        automatically by :meth:`admit` whenever the local lease runs
        dry.  A still-undrained prior lease is released first, so
        explicit re-leasing can never strand charged units.  Caller
        holds ``self._lock`` or owns the stub outright.
        """
        prior, self._lease = self._lease, None
        if prior is not None and prior.unused > 0:
            self._plane.release(self._handle, prior.unused)
        granted, message, issued = self._plane.lease(self._handle, n)
        if granted == 0:
            self._lease = None
            raise QueryBudgetExhausted(message, issued=issued)
        self._lease = LimitLease(granted)
        return self._lease

    def flush(self) -> None:
        """Return the local lease's unused units to the coordinator.

        The runtime's region-boundary hook: admission headroom a
        finished (or failed) region leased but did not spend flows back
        so other workers -- and the final write-back -- see the exact
        charge.  A no-op when nothing is held.
        """
        with self._lock:
            lease, self._lease = self._lease, None
        if lease is not None and lease.unused > 0:
            self._plane.release(self._handle, lease.unused)

    def state(self) -> dict:
        """The authoritative counters, straight from the coordinator."""
        return self._plane.object_state(self._handle)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(handle={self._handle}, "
            f"lease_chunk={self.lease_chunk})"
        )


class SharedBudget(SharedLimitClient):
    """Shared-state counterpart of :class:`QueryBudget`."""

    @property
    def remaining(self) -> int:
        """Queries the authoritative budget still admits."""
        state = self.state()
        return int(state["max_queries"]) - int(state["used"])

    @property
    def used(self) -> int:
        """Queries the authoritative budget has admitted."""
        return int(self.state()["used"])


class SharedDailyLimit(SharedLimitClient):
    """Shared-state counterpart of :class:`DailyRateLimit`."""

    @property
    def used_today(self) -> int:
        """Queries spent against the authoritative quota today."""
        return self._plane.daily_used_today(self._handle)

    @property
    def remaining_today(self) -> int:
        """Queries left in the authoritative quota today."""
        return self._plane.daily_remaining_today(self._handle)


class SharedClock:
    """Shared-state counterpart of :class:`SimulatedClock`.

    Any worker's :meth:`sleep_until_next_day` advances the one
    authoritative day counter, so daily quotas roll over for the whole
    fleet at once -- exactly the per-IP timeline the paper's cost model
    assumes.
    """

    def __init__(self, plane, handle: int):
        self._plane = plane
        self._handle = handle

    @property
    def day(self) -> int:
        """The authoritative simulated day index."""
        return self._plane.clock_day(self._handle)

    def sleep_until_next_day(self) -> int:
        """Advance the authoritative clock; returns the new day."""
        return self._plane.clock_sleep(self._handle)

    def state(self) -> dict:
        """The authoritative clock state."""
        return self._plane.object_state(self._handle)

    def __repr__(self) -> str:
        return f"SharedClock(handle={self._handle})"


class SharedStats:
    """Shared-state counterpart of :class:`QueryStats`.

    Implements the recording surface a server needs (``record``,
    phases) and the reading surface monitors use (``queries`` etc.)
    against one authoritative coordinator-owned object.  Recordings are
    *buffered*: they accumulate in a local :class:`QueryStats` (phases
    attributed per worker, which is the only coherent reading when
    several workers crawl at once) and ship as a single
    :meth:`~repro.server.stats.QueryStats.merge_counts` delta per
    :meth:`flush` -- the runtime flushes at every region boundary, so
    the authoritative counters are exact whenever anyone can observe
    them.  Reads flush first, then snapshot the coordinator; prefer
    :meth:`snapshot` over repeated property access in hot loops.
    """

    def __init__(self, plane, handle: int):
        self._plane = plane
        self._handle = handle
        self._local = QueryStats()
        # Guards the buffer swap in flush() against concurrent
        # recorders/readers (monitor threads read the flushing
        # properties), mirroring SharedLimitClient's lease lock.
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        # The buffer and lock stay home: the original flushes its own
        # backlog, the clone starts clean -- recordings land exactly
        # once.
        state = self.__dict__.copy()
        state["_local"] = QueryStats()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def record(self, response: QueryResponse) -> None:
        """Buffer one answered query; lands at the next flush."""
        with self._lock:
            self._local.record(response)

    def begin_phase(self, name: str) -> None:
        """Attribute this worker's subsequent queries to a phase."""
        with self._lock:
            self._local.begin_phase(name)

    def end_phase(self) -> None:
        """Stop attributing this worker's queries to a phase."""
        with self._lock:
            self._local.end_phase()

    def flush(self) -> None:
        """Ship the buffered recordings as one coordinator round trip.

        The runtime's region-boundary hook (shared with
        :meth:`SharedLimitClient.flush`); a no-op on an empty buffer.
        The current phase attribution survives the flush.
        """
        with self._lock:
            local = self._local
            delta = local.state()
            if delta["queries"] == 0 and not delta["phase_costs"]:
                return
            fresh = QueryStats()
            phase = local.current_phase
            if phase is not None:
                fresh.begin_phase(phase)
                # begin_phase seeded the key locally; the delta's own
                # seed already creates it on the authoritative side.
                fresh.phase_costs.clear()
            self._local = fresh
        self._plane.stats_merge(self._handle, delta)

    def snapshot(self) -> QueryStats:
        """An independent local :class:`QueryStats` copy of the counters."""
        stats = QueryStats()
        stats.restore_state(self.state())
        return stats

    def state(self) -> dict:
        """The authoritative counters as a plain dict (flushes first)."""
        self.flush()
        return self._plane.object_state(self._handle)

    @property
    def queries(self) -> int:
        """Total queries recorded, fleet-wide."""
        return int(self.state()["queries"])

    @property
    def resolved(self) -> int:
        """Queries that resolved (no overflow), fleet-wide."""
        return int(self.state()["resolved"])

    @property
    def overflowed(self) -> int:
        """Queries that overflowed, fleet-wide."""
        return int(self.state()["overflowed"])

    @property
    def tuples_returned(self) -> int:
        """Tuples shipped by the server, fleet-wide."""
        return int(self.state()["tuples_returned"])

    @property
    def phase_costs(self) -> dict[str, int]:
        """Per-phase query subtotals, fleet-wide."""
        return dict(self.state()["phase_costs"])

    @property
    def round_trips(self) -> int:
        """Coordinator round trips served so far, fleet-wide."""
        return int(self.state()["round_trips"])

    def __str__(self) -> str:
        return str(self.snapshot())

    def __repr__(self) -> str:
        return f"SharedStats(handle={self._handle})"


class LimitCoordinator:
    """Lifecycle owner of the control plane, and the rewiring front.

    Use as a context manager around a process-pool crawl::

        with LimitCoordinator() as coordinator:
            shared = coordinator.share_sources(sources)
            ...  # pickle `shared` into pool workers, crawl
            coordinator.writeback()

    ``share_sources`` moves each limit / clock / stats object into the
    coordinator exactly once (object identity preserved, so a budget
    shared by several servers stays one budget) and returns rewired
    source clones; ``writeback`` copies the authoritative counters back
    into the caller's original objects.  The process executor drives
    all of this automatically under ``shared_limits=True``.
    """

    def __init__(self, *, mp_context=None):
        self._manager = _CoordinatorManager(ctx=mp_context)
        self._plane = None
        self._shared: dict[int, object] = {}
        self._writeback: list[tuple[object, int]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "LimitCoordinator":
        """Start the coordinator process (idempotent)."""
        if self._plane is None:
            self._manager.start()
            self._plane = self._manager.ControlPlane()
        return self

    def shutdown(self) -> None:
        """Stop the coordinator process.

        Shared stubs handed out by this coordinator stop working; call
        :meth:`writeback` first if the final counters matter.
        """
        if self._plane is not None:
            self._plane = None
            self._manager.shutdown()

    def __enter__(self) -> "LimitCoordinator":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    @property
    def plane(self):
        """The control-plane proxy (picklable into pool workers)."""
        if self._plane is None:
            raise RuntimeError("LimitCoordinator is not started")
        return self._plane

    # ------------------------------------------------------------------
    # Sharing
    # ------------------------------------------------------------------
    def share(self, obj):
        """The shared-state stub for one limit / clock / stats object.

        Idempotent per object identity: sharing the same object twice
        returns the same stub, so state that several sources reference
        (one budget across a fleet of identities) stays authoritative
        in one place.  Raises :class:`TypeError` for limit types the
        control plane cannot host.
        """
        if isinstance(obj, (SharedLimitClient, SharedClock, SharedStats)):
            return obj
        stub = self._shared.get(id(obj))
        if stub is not None:
            return stub
        if isinstance(obj, QueryBudget):
            handle = self.plane.add_budget(obj.state())
            stub = SharedBudget(self.plane, handle)
        elif isinstance(obj, DailyRateLimit):
            clock = self.share(obj.clock)
            handle = self.plane.add_daily(obj.state(), clock._handle)
            stub = SharedDailyLimit(self.plane, handle)
        elif isinstance(obj, SimulatedClock):
            handle = self.plane.add_clock(obj.state())
            stub = SharedClock(self.plane, handle)
        elif isinstance(obj, QueryStats):
            handle = self.plane.add_stats(obj.state())
            stub = SharedStats(self.plane, handle)
        else:
            raise TypeError(
                "the shared-limit control plane can host QueryBudget, "
                "DailyRateLimit, SimulatedClock and QueryStats objects; "
                f"got {type(obj).__name__} (exact cross-process "
                "accounting cannot be guaranteed for it)"
            )
        self._shared[id(obj)] = stub
        self._writeback.append((obj, handle))
        return stub

    def share_sources(self, sources) -> list:
        """Rewired clones of ``sources`` admitting through the plane.

        Walks each source stack -- :class:`TopKServer` directly, or
        wrappers (caching clients, latency simulators, patient clients,
        web sessions) through their wrapped source -- and replaces
        every server-side limit and stats object with its shared stub.
        The originals are untouched; the clones are what the process
        executor pickles into its pool.

        Raises :class:`TypeError` for a source whose stack exposes no
        rewireable server at all: silently shipping per-worker limit
        copies under ``shared_limits=True`` would break the
        exactly-once contract without anyone noticing.
        """
        rewired = []
        for source in sources:
            clone = self._rewire(source)
            if clone is source:
                raise TypeError(
                    "shared_limits could not rewire a source of type "
                    f"{type(source).__name__}: expected a TopKServer or "
                    "a wrapper chain (attributes _server/_source/_site) "
                    "ending in one; without rewiring, each pool worker "
                    "would admit against its own limit copy"
                )
            rewired.append(clone)
        return rewired

    def _rewire(self, obj):
        if isinstance(obj, TopKServer):
            return obj.with_accounting(
                limits=[self.share(limit) for limit in obj._limits],
                stats=self.share(obj.stats),
            )
        clone = obj
        for attr in ("_server", "_source", "_site"):
            inner = getattr(obj, attr, None)
            if inner is None:
                continue
            rewired = self._rewire(inner)
            if rewired is not inner:
                if clone is obj:
                    clone = copy.copy(obj)
                setattr(clone, attr, rewired)
        # A PatientClient sleeps its own clock reference; share it so
        # the whole fleet observes the same day boundaries.
        inner_clock = getattr(obj, "_clock", None)
        if isinstance(inner_clock, SimulatedClock):
            if clone is obj:
                clone = copy.copy(obj)
            clone._clock = self.share(inner_clock)
        return clone

    def shared_stubs(self) -> list:
        """Every flushable stub this coordinator has handed out.

        The :class:`SharedLimitClient` and :class:`SharedStats`
        instances created by :meth:`share` (in creation order,
        deduplicated by construction -- sharing is identity-memoised).
        The process executor pickles this list *together with* the
        rewired sources, so each pool worker's unpickled stub objects
        are exactly the ones its source clones reference (pickle
        memoisation preserves the shared identity) and can be
        ``flush()``-ed at every region boundary.
        """
        return [
            stub
            for stub in self._shared.values()
            if isinstance(stub, (SharedLimitClient, SharedStats))
        ]

    def clamp_lease_chunk(self, chunk: int, fleet: int) -> int:
        """Cap an estimator-sized chunk against the budgets' headroom.

        A fleet of ``fleet`` workers can strand at most
        ``fleet x chunk`` leased-but-unissued units between region
        boundaries; near a budget's edge that stranding could refuse a
        crawl per-query admission would have satisfied.  Clamping the
        chunk to ``remaining // (4 x fleet)`` keeps the whole fleet's
        possible stranding under a quarter of the remaining budget --
        and collapses to exact per-query admission (chunk 1) on tight
        budgets, where sequential-equivalent exhaustion behaviour
        matters most.  Explicit ``lease_chunk`` overrides are the
        caller's business and are deliberately not clamped.
        """
        if fleet < 1:
            raise ValueError(f"fleet must be positive, got {fleet}")
        for stub in self._shared.values():
            if isinstance(stub, SharedBudget):
                cap = max(1, stub.remaining // (4 * fleet))
                chunk = min(chunk, cap)
        return max(1, chunk)

    def set_lease_chunk(self, chunk: int) -> None:
        """Set the admission lease chunk on every budget stub.

        Applied to :class:`SharedBudget` stubs only: a budget chunk is
        a pure round-trip amortisation, while clock-coupled limits (a
        :class:`~repro.server.limits.DailyRateLimit` rolling over under
        the lessee's feet) stay at exact per-query admission.  Call
        after :meth:`share_sources` and before pickling the rewired
        clones -- the chunk travels with them into the pool.
        """
        if chunk < 1:
            raise ValueError(f"lease chunk must be positive, got {chunk}")
        for stub in self._shared.values():
            if isinstance(stub, SharedBudget):
                stub.lease_chunk = chunk

    def round_trips(self) -> int:
        """Worker-originated round trips the plane has served so far."""
        return self.plane.round_trips()

    def writeback(self) -> None:
        """Copy the authoritative counters back into the originals.

        After this, the caller's own ``QueryBudget.used``,
        ``DailyRateLimit.used_today``, ``SimulatedClock.day`` and
        ``server.stats`` read exactly what the whole pool charged --
        including a crawl that died on exhaustion.  Parent-held stubs
        are flushed first (leases returned, buffered stats landed), so
        nothing the caller could have recorded locally is lost.  Call
        before :meth:`shutdown`.
        """
        for stub in self._shared.values():
            flush = getattr(stub, "flush", None)
            if flush is not None:
                flush()
        for original, handle in self._writeback:
            original.restore_state(self.plane.object_state(handle))

    # ------------------------------------------------------------------
    # Cross-process scheduling
    # ------------------------------------------------------------------
    def make_scheduler(
        self,
        bundles,
        estimator: CostEstimator | None = None,
        *,
        subtree: bool = False,
        completed=None,
    ):
        """A coordinator-hosted scheduler proxy for worker-pull loops.

        The scheduler object lives in the coordinator process; the
        returned proxy (picklable into pool workers) serialises
        ``acquire`` / ``complete`` / ``publish`` calls through it, so
        idle workers steal regions -- and, with ``subtree=True``,
        subtree shards of live regions -- across process boundaries
        with exact observed-cost accounting.  ``estimator`` knowledge
        travels via :meth:`CostEstimator.export_state`; fold the
        results back with the scheduler's ``completed_costs()``.
        ``completed`` maps a resumed crawl's already-finished plan
        positions to their costs -- never queued, but seeded into the
        scheduler's estimator.
        """
        state = estimator.export_state() if estimator is not None else None
        bundles = [list(bundle) for bundle in bundles]
        completed = dict(completed) if completed else None
        if subtree:
            return self._manager.SubtreeScheduler(bundles, state, completed)
        return self._manager.WorkStealingScheduler(bundles, state, completed)
