"""Cross-process shared-limit control plane for the process backend.

The paper charges every issued query against the server's interface
limits, but a plain pickled source copy (the process executor's default)
gives each pool worker its *own* ``QueryBudget``/``DailyRateLimit`` --
exact accounting, the repo's core determinism contract, silently breaks
across processes.  This module closes that gap:

* :class:`LimitCoordinator` starts a lightweight coordinator process (a
  :class:`multiprocessing.managers.BaseManager`) whose
  :class:`_ControlPlane` owns the **authoritative**
  :class:`~repro.server.limits.QueryBudget`,
  :class:`~repro.server.limits.DailyRateLimit`,
  :class:`~repro.server.limits.SimulatedClock` and
  :class:`~repro.server.stats.QueryStats` objects;
* workers receive thin :class:`SharedLimitClient` / :class:`SharedStats`
  / :class:`SharedClock` proxies -- the shared-state counterparts of the
  ``LocklessPickle`` per-copy paths -- that admit, tick and account
  through the plane with **exactly-once** semantics (the authoritative
  object's own lock serialises admissions, no matter how many processes
  race);
* the coordinator can also host a
  :class:`~repro.crawl.rebalance.WorkStealingScheduler` or
  :class:`~repro.crawl.rebalance.SubtreeScheduler`
  (:meth:`LimitCoordinator.make_scheduler`), which is what lets idle
  pool workers steal regions and subtree shards *across process
  boundaries* with exact observed-cost feedback.

Ownership and write-back
------------------------
:meth:`LimitCoordinator.share_sources` walks a source stack (servers,
caching clients, latency wrappers), moves each limit / clock / stats
object's state into the plane once (object identity is preserved: two
servers sharing one budget share one authoritative copy) and returns
rewired shallow clones that are safe to pickle into pool workers.  The
caller's original objects are never mutated during the crawl; after it,
:meth:`LimitCoordinator.writeback` copies the authoritative counters
back into them, so ``budget.used`` and ``server.stats.queries`` read
exactly what was charged -- even when the crawl died on exhaustion.

Client-side caches are deliberately *not* shared: a
:class:`~repro.server.client.CachingClient` stays a per-worker copy
(distinct regions issue distinct queries, so per-worker caches change
nothing about the total charged cost), while the server-side admission
and accounting behind it become globally exact.
"""

from __future__ import annotations

import copy
import threading
from multiprocessing.managers import BaseManager

from repro.crawl.rebalance import CostEstimator
from repro.exceptions import QueryBudgetExhausted
from repro.server.limits import (
    DailyRateLimit,
    QueryBudget,
    QueryLimit,
    SimulatedClock,
)
from repro.server.response import QueryResponse
from repro.server.server import TopKServer
from repro.server.stats import QueryStats

__all__ = [
    "LimitCoordinator",
    "SharedLimitClient",
    "SharedBudget",
    "SharedDailyLimit",
    "SharedClock",
    "SharedStats",
]


class _ControlPlane:
    """The coordinator-process side: owns the authoritative objects.

    Lives inside the manager process; every public method is called
    through a proxy, each client connection served by its own manager
    thread.  Registration happens from the parent before the pool
    starts; after that the handle table is read-only, and all mutation
    goes through the owned objects' internal locks -- which is exactly
    the exactly-once admission contract: ``admit`` on one authoritative
    limit is atomic no matter how many worker processes race.

    Admission refusals are returned as values, not raised: a remote
    exception would be re-pickled by the manager machinery, while the
    value path lets :class:`SharedLimitClient` raise a faithful
    :class:`~repro.exceptions.QueryBudgetExhausted` (message and
    ``issued`` intact) in the worker.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._objects: dict[int, object] = {}
        self._next_handle = 0
        self._events: list[tuple] = []

    def _add(self, obj) -> int:
        with self._lock:
            handle = self._next_handle
            self._next_handle += 1
            self._objects[handle] = obj
            return handle

    def _get(self, handle: int):
        with self._lock:
            return self._objects[handle]

    # ------------------------------------------------------------------
    # Registration (parent only, before workers exist)
    # ------------------------------------------------------------------
    def add_budget(self, state: dict) -> int:
        """Own a budget seeded from a ``QueryBudget.state()`` snapshot."""
        budget = QueryBudget(int(state["max_queries"]))
        budget.restore_state(state)
        return self._add(budget)

    def add_clock(self, state: dict) -> int:
        """Own a clock seeded from a ``SimulatedClock.state()`` snapshot."""
        clock = SimulatedClock(int(state["day"]))
        return self._add(clock)

    def add_daily(self, state: dict, clock_handle: int) -> int:
        """Own a daily limit ticking against an already-owned clock.

        The limit and its clock live in the same (coordinator) process
        and reference each other directly -- no nested proxies.
        """
        limit = DailyRateLimit(int(state["per_day"]), self._get(clock_handle))
        limit.restore_state(state)
        return self._add(limit)

    def add_stats(self, state: dict) -> int:
        """Own a stats sink seeded from a ``QueryStats.state()`` snapshot."""
        stats = QueryStats()
        stats.restore_state(state)
        return self._add(stats)

    # ------------------------------------------------------------------
    # Admission and accounting (called from every worker)
    # ------------------------------------------------------------------
    def admit(self, handle: int) -> tuple[bool, str, int]:
        """Admit one query against an owned limit, exactly once.

        Returns ``(True, "", 0)`` on success and
        ``(False, message, issued)`` on refusal.
        """
        try:
            self._get(handle).admit()
        except QueryBudgetExhausted as exc:
            return (False, str(exc), exc.issued)
        return (True, "", 0)

    def object_state(self, handle: int) -> dict:
        """The ``state()`` snapshot of any owned object."""
        return self._get(handle).state()

    def clock_day(self, handle: int) -> int:
        """Current day of an owned clock."""
        return self._get(handle).day

    def clock_sleep(self, handle: int) -> int:
        """Advance an owned clock to the next day; returns its index."""
        return self._get(handle).sleep_until_next_day()

    def daily_used_today(self, handle: int) -> int:
        """``used_today`` of an owned daily limit (rolls over first)."""
        return self._get(handle).used_today

    def daily_remaining_today(self, handle: int) -> int:
        """``remaining_today`` of an owned daily limit."""
        return self._get(handle).remaining_today

    def stats_record(self, handle: int, overflow: bool, tuples: int) -> None:
        """Account one answered query into an owned stats object."""
        self._get(handle).record_counts(overflow, tuples)

    def stats_begin_phase(self, handle: int, name: str) -> None:
        """Begin a named cost phase on an owned stats object."""
        self._get(handle).begin_phase(name)

    def stats_end_phase(self, handle: int) -> None:
        """End the current cost phase on an owned stats object."""
        self._get(handle).end_phase()

    # ------------------------------------------------------------------
    # Progress event relay (workers push, the parent drains)
    # ------------------------------------------------------------------
    def push_event(self, event: tuple) -> None:
        """Queue one progress event for the parent to collect."""
        with self._lock:
            self._events.append(event)

    def pop_events(self) -> list[tuple]:
        """Drain the queued progress events (each returned once)."""
        with self._lock:
            events = self._events
            self._events = []
            return events


def _make_worksteal_scheduler(bundles, estimator_state):
    # Manager-side factory: rebuild the caller's estimator knowledge
    # from its export_state() snapshot (the object itself holds a lock
    # and cannot travel).
    from repro.crawl.rebalance import WorkStealingScheduler

    estimator = CostEstimator(**estimator_state) if estimator_state else None
    return WorkStealingScheduler(bundles, estimator)


def _make_subtree_scheduler(bundles, estimator_state):
    from repro.crawl.rebalance import SubtreeScheduler

    estimator = CostEstimator(**estimator_state) if estimator_state else None
    return SubtreeScheduler(bundles, estimator)


class _CoordinatorManager(BaseManager):
    """The manager hosting one control plane and optional schedulers."""


_CoordinatorManager.register("ControlPlane", _ControlPlane)
_CoordinatorManager.register(
    "WorkStealingScheduler", _make_worksteal_scheduler
)
_CoordinatorManager.register("SubtreeScheduler", _make_subtree_scheduler)


# ----------------------------------------------------------------------
# Worker-side stubs
# ----------------------------------------------------------------------
class SharedLimitClient(QueryLimit):
    """A :class:`QueryLimit` admitting through the control plane.

    The worker-side counterpart of one coordinator-owned limit: thin
    (a proxy plus a handle), picklable into pool workers, and exact --
    an ``admit()`` either charges the single authoritative counter or
    raises :class:`~repro.exceptions.QueryBudgetExhausted` with the
    authoritative message and ``issued`` count.
    """

    def __init__(self, plane, handle: int):
        self._plane = plane
        self._handle = handle

    def admit(self) -> None:
        ok, message, issued = self._plane.admit(self._handle)
        if not ok:
            raise QueryBudgetExhausted(message, issued=issued)

    def state(self) -> dict:
        """The authoritative counters, straight from the coordinator."""
        return self._plane.object_state(self._handle)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(handle={self._handle})"


class SharedBudget(SharedLimitClient):
    """Shared-state counterpart of :class:`QueryBudget`."""

    @property
    def remaining(self) -> int:
        """Queries the authoritative budget still admits."""
        state = self.state()
        return int(state["max_queries"]) - int(state["used"])

    @property
    def used(self) -> int:
        """Queries the authoritative budget has admitted."""
        return int(self.state()["used"])


class SharedDailyLimit(SharedLimitClient):
    """Shared-state counterpart of :class:`DailyRateLimit`."""

    @property
    def used_today(self) -> int:
        """Queries spent against the authoritative quota today."""
        return self._plane.daily_used_today(self._handle)

    @property
    def remaining_today(self) -> int:
        """Queries left in the authoritative quota today."""
        return self._plane.daily_remaining_today(self._handle)


class SharedClock:
    """Shared-state counterpart of :class:`SimulatedClock`.

    Any worker's :meth:`sleep_until_next_day` advances the one
    authoritative day counter, so daily quotas roll over for the whole
    fleet at once -- exactly the per-IP timeline the paper's cost model
    assumes.
    """

    def __init__(self, plane, handle: int):
        self._plane = plane
        self._handle = handle

    @property
    def day(self) -> int:
        """The authoritative simulated day index."""
        return self._plane.clock_day(self._handle)

    def sleep_until_next_day(self) -> int:
        """Advance the authoritative clock; returns the new day."""
        return self._plane.clock_sleep(self._handle)

    def state(self) -> dict:
        """The authoritative clock state."""
        return self._plane.object_state(self._handle)

    def __repr__(self) -> str:
        return f"SharedClock(handle={self._handle})"


class SharedStats:
    """Shared-state counterpart of :class:`QueryStats`.

    Implements the recording surface a server needs (``record``,
    phases) by shipping the bare counts to the coordinator, and the
    reading surface monitors use (``queries`` etc.) by snapshotting the
    authoritative counters.  Reads are round trips; prefer
    :meth:`snapshot` over repeated property access in hot loops.
    """

    def __init__(self, plane, handle: int):
        self._plane = plane
        self._handle = handle

    def record(self, response: QueryResponse) -> None:
        """Account one answered query into the authoritative counters."""
        self._plane.stats_record(
            self._handle, response.overflow, len(response.rows)
        )

    def begin_phase(self, name: str) -> None:
        """Attribute subsequent queries to a named phase."""
        self._plane.stats_begin_phase(self._handle, name)

    def end_phase(self) -> None:
        """Stop attributing queries to a phase."""
        self._plane.stats_end_phase(self._handle)

    def snapshot(self) -> QueryStats:
        """An independent local :class:`QueryStats` copy of the counters."""
        stats = QueryStats()
        stats.restore_state(self._plane.object_state(self._handle))
        return stats

    def state(self) -> dict:
        """The authoritative counters as a plain dict."""
        return self._plane.object_state(self._handle)

    @property
    def queries(self) -> int:
        """Total queries recorded, fleet-wide."""
        return int(self.state()["queries"])

    @property
    def resolved(self) -> int:
        """Queries that resolved (no overflow), fleet-wide."""
        return int(self.state()["resolved"])

    @property
    def overflowed(self) -> int:
        """Queries that overflowed, fleet-wide."""
        return int(self.state()["overflowed"])

    @property
    def tuples_returned(self) -> int:
        """Tuples shipped by the server, fleet-wide."""
        return int(self.state()["tuples_returned"])

    @property
    def phase_costs(self) -> dict[str, int]:
        """Per-phase query subtotals, fleet-wide."""
        return dict(self.state()["phase_costs"])

    def __str__(self) -> str:
        return str(self.snapshot())

    def __repr__(self) -> str:
        return f"SharedStats(handle={self._handle})"


class LimitCoordinator:
    """Lifecycle owner of the control plane, and the rewiring front.

    Use as a context manager around a process-pool crawl::

        with LimitCoordinator() as coordinator:
            shared = coordinator.share_sources(sources)
            ...  # pickle `shared` into pool workers, crawl
            coordinator.writeback()

    ``share_sources`` moves each limit / clock / stats object into the
    coordinator exactly once (object identity preserved, so a budget
    shared by several servers stays one budget) and returns rewired
    source clones; ``writeback`` copies the authoritative counters back
    into the caller's original objects.  The process executor drives
    all of this automatically under ``shared_limits=True``.
    """

    def __init__(self, *, mp_context=None):
        self._manager = _CoordinatorManager(ctx=mp_context)
        self._plane = None
        self._shared: dict[int, object] = {}
        self._writeback: list[tuple[object, int]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "LimitCoordinator":
        """Start the coordinator process (idempotent)."""
        if self._plane is None:
            self._manager.start()
            self._plane = self._manager.ControlPlane()
        return self

    def shutdown(self) -> None:
        """Stop the coordinator process.

        Shared stubs handed out by this coordinator stop working; call
        :meth:`writeback` first if the final counters matter.
        """
        if self._plane is not None:
            self._plane = None
            self._manager.shutdown()

    def __enter__(self) -> "LimitCoordinator":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    @property
    def plane(self):
        """The control-plane proxy (picklable into pool workers)."""
        if self._plane is None:
            raise RuntimeError("LimitCoordinator is not started")
        return self._plane

    # ------------------------------------------------------------------
    # Sharing
    # ------------------------------------------------------------------
    def share(self, obj):
        """The shared-state stub for one limit / clock / stats object.

        Idempotent per object identity: sharing the same object twice
        returns the same stub, so state that several sources reference
        (one budget across a fleet of identities) stays authoritative
        in one place.  Raises :class:`TypeError` for limit types the
        control plane cannot host.
        """
        if isinstance(obj, (SharedLimitClient, SharedClock, SharedStats)):
            return obj
        stub = self._shared.get(id(obj))
        if stub is not None:
            return stub
        if isinstance(obj, QueryBudget):
            handle = self.plane.add_budget(obj.state())
            stub = SharedBudget(self.plane, handle)
        elif isinstance(obj, DailyRateLimit):
            clock = self.share(obj.clock)
            handle = self.plane.add_daily(obj.state(), clock._handle)
            stub = SharedDailyLimit(self.plane, handle)
        elif isinstance(obj, SimulatedClock):
            handle = self.plane.add_clock(obj.state())
            stub = SharedClock(self.plane, handle)
        elif isinstance(obj, QueryStats):
            handle = self.plane.add_stats(obj.state())
            stub = SharedStats(self.plane, handle)
        else:
            raise TypeError(
                "the shared-limit control plane can host QueryBudget, "
                "DailyRateLimit, SimulatedClock and QueryStats objects; "
                f"got {type(obj).__name__} (exact cross-process "
                "accounting cannot be guaranteed for it)"
            )
        self._shared[id(obj)] = stub
        self._writeback.append((obj, handle))
        return stub

    def share_sources(self, sources) -> list:
        """Rewired clones of ``sources`` admitting through the plane.

        Walks each source stack -- :class:`TopKServer` directly, or
        wrappers (caching clients, latency simulators, patient clients,
        web sessions) through their wrapped source -- and replaces
        every server-side limit and stats object with its shared stub.
        The originals are untouched; the clones are what the process
        executor pickles into its pool.

        Raises :class:`TypeError` for a source whose stack exposes no
        rewireable server at all: silently shipping per-worker limit
        copies under ``shared_limits=True`` would break the
        exactly-once contract without anyone noticing.
        """
        rewired = []
        for source in sources:
            clone = self._rewire(source)
            if clone is source:
                raise TypeError(
                    "shared_limits could not rewire a source of type "
                    f"{type(source).__name__}: expected a TopKServer or "
                    "a wrapper chain (attributes _server/_source/_site) "
                    "ending in one; without rewiring, each pool worker "
                    "would admit against its own limit copy"
                )
            rewired.append(clone)
        return rewired

    def _rewire(self, obj):
        if isinstance(obj, TopKServer):
            return obj.with_accounting(
                limits=[self.share(limit) for limit in obj._limits],
                stats=self.share(obj.stats),
            )
        clone = obj
        for attr in ("_server", "_source", "_site"):
            inner = getattr(obj, attr, None)
            if inner is None:
                continue
            rewired = self._rewire(inner)
            if rewired is not inner:
                if clone is obj:
                    clone = copy.copy(obj)
                setattr(clone, attr, rewired)
        # A PatientClient sleeps its own clock reference; share it so
        # the whole fleet observes the same day boundaries.
        inner_clock = getattr(obj, "_clock", None)
        if isinstance(inner_clock, SimulatedClock):
            if clone is obj:
                clone = copy.copy(obj)
            clone._clock = self.share(inner_clock)
        return clone

    def writeback(self) -> None:
        """Copy the authoritative counters back into the originals.

        After this, the caller's own ``QueryBudget.used``,
        ``DailyRateLimit.used_today``, ``SimulatedClock.day`` and
        ``server.stats`` read exactly what the whole pool charged --
        including a crawl that died on exhaustion.  Call before
        :meth:`shutdown`.
        """
        for original, handle in self._writeback:
            original.restore_state(self.plane.object_state(handle))

    # ------------------------------------------------------------------
    # Cross-process scheduling
    # ------------------------------------------------------------------
    def make_scheduler(
        self,
        bundles,
        estimator: CostEstimator | None = None,
        *,
        subtree: bool = False,
    ):
        """A coordinator-hosted scheduler proxy for worker-pull loops.

        The scheduler object lives in the coordinator process; the
        returned proxy (picklable into pool workers) serialises
        ``acquire`` / ``complete`` / ``publish`` calls through it, so
        idle workers steal regions -- and, with ``subtree=True``,
        subtree shards of live regions -- across process boundaries
        with exact observed-cost accounting.  ``estimator`` knowledge
        travels via :meth:`CostEstimator.export_state`; fold the
        results back with the scheduler's ``completed_costs()``.
        """
        state = estimator.export_state() if estimator is not None else None
        bundles = [list(bundle) for bundle in bundles]
        if subtree:
            return self._manager.SubtreeScheduler(bundles, state)
        return self._manager.WorkStealingScheduler(bundles, state)
