"""Concurrent partitioned crawling: one worker thread per session.

:func:`~repro.crawl.partition.crawl_partitioned` executes a
:class:`~repro.crawl.partition.PartitionPlan` session by session, so a
deployment that owns four identities pays the coordination cost of
partitioning without its wall-clock payoff.  This module runs the same
plan on a :class:`concurrent.futures.ThreadPoolExecutor`, one session
per worker, and merges the per-region results deterministically.  The
serving stack is thread-safe end to end (atomic limits, exactly-once
:class:`~repro.server.client.CachingClient` misses, locked lazy engine
indexes, atomic :class:`~repro.server.stats.QueryStats`), so sessions
may even share a server or a limit object.

Why threads pay off: a real crawl is latency-bound -- every query is a
network round trip to the hidden database, and the per-identity daily
quotas the paper motivates its cost metric with (Section 1.1) bind per
session.  Worker threads overlap those waits, so the wall clock drops
from the *sum* of the session times to roughly their *maximum*
(``benchmarks/bench_parallel_partitioned.py`` measures the effect
against a simulated-latency server).

**Determinism contract.**  Each session crawls its own regions against
its own source with a deterministic algorithm, so no matter how the
scheduler interleaves the workers:

* ``result.rows`` is ordered by (session index, region index,
  extraction order) -- byte-identical to the sequential executor's;
* ``result.cost`` is the sum of per-session costs -- identical to the
  sequential executor's (provided sessions do not share a cache);
* ``result.progress`` is the canonical
  :func:`~repro.crawl.base.merge_progress` interleaving of the
  per-session curves, a pure function of those curves.

Only the *live* feed of an attached
:class:`~repro.crawl.base.ProgressAggregator` reflects actual thread
scheduling; everything in the returned
:class:`~repro.crawl.partition.PartitionedResult` is reproducible.

Failure semantics mirror the sequential executor: with
``allow_partial=True`` a budget-interrupted region yields a partial
result and the merge is marked incomplete; with ``allow_partial=False``
the exception of the lowest-indexed failing session is re-raised once
every worker has finished (threads cannot be interrupted mid-region, so
the executor drains before propagating).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

from repro.crawl.base import Crawler, ProgressAggregator, ProgressPoint
from repro.crawl.hybrid import Hybrid
from repro.crawl.partition import (
    PartitionedResult,
    PartitionPlan,
    _check_sources,
    _crawl_session,
    _merge_session_results,
)

__all__ = ["crawl_partitioned_parallel", "default_workers"]


def default_workers(sessions: int) -> int:
    """A sensible worker count: one per session, capped at 4x the CPUs.

    Sessions are latency-bound, not CPU-bound, so oversubscribing the
    cores is fine; the cap only guards against absurd plans.
    """
    return max(1, min(sessions, 4 * (os.cpu_count() or 1)))


def crawl_partitioned_parallel(
    sources: Sequence,
    plan: PartitionPlan,
    *,
    max_workers: int | None = None,
    crawler_factory: Callable[..., Crawler] = Hybrid,
    allow_partial: bool = False,
    aggregator: ProgressAggregator | None = None,
) -> PartitionedResult:
    """Crawl every region of ``plan``, sessions running concurrently.

    Parameters
    ----------
    sources:
        One query source per bundle, exactly as for
        :func:`~repro.crawl.partition.crawl_partitioned`.  Distinct
        sources keep per-session cost attribution identical to the
        sequential executor; sharing one (thread-safe) server across
        sessions is allowed and still yields the exact bag.
    plan:
        The partition plan; one worker crawls one bundle.
    max_workers:
        Size of the thread pool; defaults to
        :func:`default_workers`.  ``1`` degenerates to sequential
        execution (useful to isolate concurrency when debugging).
    crawler_factory:
        Crawler class (or factory) applied to each region's
        :class:`~repro.crawl.partition.SubspaceView`; defaults to
        :class:`~repro.crawl.hybrid.Hybrid`.
    allow_partial:
        Forwarded to each region crawl; a budget-interrupted region
        marks the merged result incomplete.
    aggregator:
        Optional live progress sink; each session reports its
        cumulative (queries, tuples) samples under the aggregator's
        lock, indexed by session.

    Returns
    -------
    PartitionedResult
        Deterministically merged: rows ordered by (session, region),
        costs summed, progress merged on the canonical query timeline.

    Raises
    ------
    SchemaError
        If ``sources`` does not match ``plan.sessions``.
    QueryBudgetExhausted
        When a limit fires and ``allow_partial`` is ``False`` (the
        lowest-indexed failing session's exception, after all workers
        drained).
    """
    _check_sources(sources, plan)
    if aggregator is not None and aggregator.sessions != plan.sessions:
        raise ValueError(
            f"aggregator tracks {aggregator.sessions} sessions but the "
            f"plan has {plan.sessions}"
        )
    if max_workers is None:
        max_workers = default_workers(plan.sessions)
    if max_workers < 1:
        raise ValueError(f"max_workers must be positive, got {max_workers}")

    def reporter_for(session: int):
        if aggregator is None:
            return None

        def report(point: ProgressPoint, session: int = session) -> None:
            aggregator.report(session, point)

        return report

    def run_session(session: int):
        return _crawl_session(
            sources[session],
            plan.bundles[session],
            crawler_factory=crawler_factory,
            allow_partial=allow_partial,
            reporter=reporter_for(session),
        )

    with ThreadPoolExecutor(
        max_workers=max_workers, thread_name_prefix="crawl-session"
    ) as pool:
        futures = [
            pool.submit(run_session, i) for i in range(plan.sessions)
        ]
        # Drain every worker before propagating failures so the pool
        # never leaks running sessions; then fail deterministically on
        # the lowest session index.
        outcomes = []
        for future in futures:
            try:
                outcomes.append((future.result(), None))
            except Exception as exc:  # noqa: BLE001 - re-raised below
                outcomes.append((None, exc))
    for _, exc in outcomes:
        if exc is not None:
            raise exc
    session_results = tuple(result for result, _ in outcomes)
    return _merge_session_results(plan, session_results)
