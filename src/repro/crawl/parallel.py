"""Concurrent partitioned crawling over the pluggable executor layer.

PR 1 introduced :func:`crawl_partitioned_parallel` as a thread-pool
executor with a deterministic merge; the dispatch loop now lives in
:mod:`repro.crawl.executors` behind the :class:`CrawlExecutor`
interface, and this module is the stable front door: the same function,
plus an ``executor`` selector (``"thread"`` by default, ``"process"``
for CPU-bound simulated engines, ``"async"`` for awaitable sources)
and a ``rebalance`` switch enabling work stealing
(:mod:`repro.crawl.rebalance`).

Whatever the backend and stealing schedule, the **determinism
contract** of PR 1 holds unchanged: ``result.rows`` is ordered by
(session index, region index, extraction order), ``result.cost`` is the
sum of per-session costs, and ``result.progress`` is the canonical
:func:`~repro.crawl.base.merge_progress` interleaving of the
per-session curves -- byte-identical to the sequential executor on the
same plan.  Only the live feed of an attached
:class:`~repro.crawl.base.ProgressAggregator` reflects actual
scheduling.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.crawl.base import Crawler, ProgressAggregator
from repro.crawl.executors import (
    CrawlExecutor,
    default_workers,
    make_executor,
)
from repro.crawl.hybrid import Hybrid
from repro.crawl.partition import PartitionedResult, PartitionPlan
from repro.crawl.rebalance import CostEstimator
from repro.crawl.spec import CrawlSpec

__all__ = ["crawl_partitioned_parallel", "default_workers"]


def crawl_partitioned_parallel(
    sources: Sequence,
    plan: PartitionPlan,
    *,
    spec: CrawlSpec | None = None,
    max_workers: int | None = None,
    crawler_factory: Callable[..., Crawler] = Hybrid,
    allow_partial: bool = False,
    aggregator: ProgressAggregator | None = None,
    executor: str | CrawlExecutor = "thread",
    rebalance: bool = False,
    estimator: CostEstimator | None = None,
    shard_subtrees: int | str | None = None,
    shared_limits: bool = False,
    completed=None,
    on_region=None,
) -> PartitionedResult:
    """Crawl every region of ``plan``, sessions running concurrently.

    Parameters
    ----------
    sources:
        One query source per bundle, exactly as for
        :func:`~repro.crawl.partition.crawl_partitioned`.
    plan:
        The partition plan.
    spec:
        A :class:`~repro.crawl.spec.CrawlSpec` carrying the *whole*
        configuration -- backend half and run half.  When given, every
        other keyword argument must stay at its default (rejected
        otherwise, so a flag cannot silently lose to the spec).  When
        omitted, the individual keyword arguments below are folded into
        a spec internally, so this front door never emits the
        executor-layer deprecation warning.
    max_workers:
        Worker count for the chosen backend; defaults to
        :func:`~repro.crawl.executors.default_workers`.  ``1``
        degenerates to sequential execution.
    crawler_factory:
        Crawler class (or factory) applied to each region's
        :class:`~repro.crawl.partition.SubspaceView`; defaults to
        :class:`~repro.crawl.hybrid.Hybrid`.  Must be picklable for the
        process backend.
    allow_partial:
        Forwarded to each region crawl; a budget-interrupted region
        marks the merged result incomplete.
    aggregator:
        Optional live progress sink; sessions are marked done/failed as
        they terminate.
    executor:
        Backend name (``"sequential"``, ``"thread"``, ``"process"``,
        ``"async"``) or a ready :class:`CrawlExecutor` instance.  An
        instance carries its own worker count, so combining one with
        ``max_workers`` is rejected rather than silently ignored.
    rebalance:
        Enable adaptive work stealing (see
        :mod:`repro.crawl.rebalance`).
    estimator:
        Optional cost estimator seeding the stealing decisions.
    shard_subtrees:
        Split every region's crawl into up to this many subtree shards
        (:mod:`repro.crawl.sharding`), letting idle workers steal
        subqueries of a live region; with a skewed plan this is what
        keeps every worker busy while one heavy region dominates.
        ``"auto"`` presplits only regions whose estimated cost exceeds
        the fleet's fair share
        (:meth:`~repro.crawl.runtime.ShardPolicy.adaptive`); ``None``
        disables sharding.  The merged result is identical under every
        setting.
    shared_limits:
        Keep server-side limits, clocks and stats *globally exact* on
        the process backend by routing them through the shared-state
        control plane (:mod:`repro.crawl.coordinator`): one
        authoritative ``QueryBudget``/``DailyRateLimit`` admits for the
        whole pool, and the caller's original limit objects read the
        exact fleet-wide counts after the crawl.  A no-op on the
        in-process backends, which already share those objects by
        reference.
    completed:
        Already-crawled results keyed by plan position (a resumed
        crawl's :class:`~repro.crawl.checkpoint.CrawlCheckpoint`
        ``completed`` map): pre-filed into the merge, never re-crawled.
    on_region:
        Callback fired for every newly completed region -- typically a
        :class:`~repro.crawl.checkpoint.CheckpointWriter`'s
        ``region_done``, so the checkpoint advances at every region
        boundary.

    Raises
    ------
    SchemaError
        If ``sources`` does not match ``plan.sessions``.
    QueryBudgetExhausted
        When a limit fires and ``allow_partial`` is ``False`` (the
        lowest failing plan position's exception, after all workers
        drained).

    Examples
    --------
    Three identities crawl a plan concurrently, stealing subtrees of
    whatever region turns out heaviest::

        plan = partition_space(dataset.space, 3)
        sources = [TopKServer(dataset, k=32) for _ in range(3)]
        merged = crawl_partitioned_parallel(
            sources, plan, executor="thread",
            rebalance=True, shard_subtrees=8,
        )
        assert sorted(merged.rows) == sorted(dataset.iter_rows())
    """
    if spec is not None:
        overridden = (
            max_workers is not None
            or crawler_factory is not Hybrid
            or allow_partial
            or aggregator is not None
            or executor != "thread"
            or rebalance
            or estimator is not None
            or shard_subtrees is not None
            or shared_limits
            or completed is not None
            or on_region is not None
        )
        if overridden:
            raise ValueError(
                "pass either spec= or individual keyword arguments, "
                "not both"
            )
    else:
        spec = CrawlSpec(
            executor=executor if isinstance(executor, str) else None,
            max_workers=max_workers,
            crawler_factory=crawler_factory,
            allow_partial=allow_partial,
            aggregator=aggregator,
            rebalance=rebalance,
            estimator=estimator,
            shard_subtrees=shard_subtrees,
            shared_limits=shared_limits,
            completed=completed,
            on_region=on_region,
        )
    if isinstance(executor, str):
        executor = make_executor(spec=spec)
    elif max_workers is not None:
        raise ValueError(
            "pass max_workers with an executor *name*; a CrawlExecutor "
            "instance already carries its own worker count"
        )
    return executor.run(sources, plan, spec)
