"""``binary-shrink``: the straightforward numeric baseline (Section 2.1).

Repeatedly halve the extent of an overflowing rectangle on some
non-exhausted attribute until every piece resolves.  Correct, but its
cost depends on the attribute domain sizes (each overflowing rectangle
may be halved ``log(domain)`` times before the tuple counts drop), which
is exactly the weakness rank-shrink removes.

Because it cuts extents at their midpoint, the algorithm needs finite
``[lo, hi]`` bounds on every attribute -- a real crawler would read them
off the search form; experiment harnesses attach observed bounds via
:meth:`repro.dataspace.dataset.Dataset.with_bounds_from_data`.
"""

from __future__ import annotations

from repro.crawl.base import Crawler
from repro.dataspace.space import SpaceKind
from repro.exceptions import (
    InfeasibleCrawlError,
    SchemaError,
    UnboundedDomainError,
)
from repro.query.query import Query

__all__ = ["BinaryShrink", "solve_binary", "explore_binary"]


def solve_binary(crawler: Crawler, root_query: Query) -> None:
    """Extract every tuple matching ``root_query`` via binary-shrink.

    ``root_query`` must carry finite extents on every non-exhausted
    numeric attribute (the midpoint split needs both ends).
    """
    leftover = _drain_binary(crawler, root_query, min_pending=None)
    assert not leftover  # min_pending=None drains the whole subtree


def explore_binary(
    crawler: Crawler, root_query: Query, *, min_pending: int
) -> list[Query]:
    """Run binary-shrink until ``min_pending`` subtrees are pending.

    The binary-shrink sibling of
    :func:`repro.crawl.rank_shrink.explore_numeric`: the returned
    pairwise-disjoint rectangles, crawled to completion in list order,
    replay exactly the remainder of the sequential crawl.  Empty when
    the subtree drains before the frontier reaches ``min_pending``.
    """
    if min_pending < 1:
        raise SchemaError(f"min_pending must be positive, got {min_pending}")
    return _drain_binary(crawler, root_query, min_pending=min_pending)


def _drain_binary(
    crawler: Crawler, root_query: Query, *, min_pending: int | None
) -> list[Query]:
    """The binary-shrink work loop, optionally stopping at a frontier."""
    d = root_query.space.dimensionality
    stack = [root_query]
    while stack:
        if min_pending is not None and len(stack) >= min_pending:
            return list(reversed(stack))
        query = stack.pop()
        response = crawler._run_query(query)
        if response.resolved:
            crawler._confirm(response.rows)
            continue
        dim = next((i for i in range(d) if not query.is_exhausted(i)), None)
        if dim is None:
            raise InfeasibleCrawlError(
                f"point query {query} overflowed: more than k={crawler.k} "
                "duplicates at one point"
            )
        lo, hi = query.extent(dim)
        assert lo is not None and hi is not None and lo < hi
        # Split at x = ceil((lo + hi) / 2); the left part gets
        # [lo, x-1], the right part [x, hi] (paper Section 2.1).
        x = -((lo + hi) // -2)
        q_left, q_right = query.split_2way(dim, x)
        # Prefetch the halving pair as one sibling battery, in pop
        # order; the pops replay the cached responses at zero cost.
        crawler._run_battery([q_left, q_right])
        stack.append(q_right)
        stack.append(q_left)
    return []


class BinaryShrink(Crawler):
    """The baseline numeric crawler the paper compares against."""

    name = "binary-shrink"

    def __init__(
        self,
        source,
        *,
        max_queries: int | None = None,
        batteries: bool = True,
    ):
        super().__init__(source, max_queries=max_queries, batteries=batteries)
        if self.space.kind is not SpaceKind.NUMERIC:
            raise SchemaError(
                "binary-shrink handles purely numeric spaces; got "
                f"{self.space.kind.value}"
            )
        for attr in self.space:
            if not attr.is_bounded:
                raise UnboundedDomainError(
                    f"binary-shrink needs finite bounds on {attr.name!r}; "
                    "rank-shrink has no such requirement"
                )

    def frontier_entry(self) -> Query:
        """The bounded root rectangle the crawl starts from.

        Exposed for the splittable front (:mod:`repro.crawl.sharding`),
        which seeds its exploration with exactly this query.
        """
        root = Query.full(self.space)
        for i, attr in enumerate(self.space):
            root = root.with_range(i, attr.lo, attr.hi)
        return root

    def _execute(self) -> None:
        solve_binary(self, self.frontier_entry())
