"""``binary-shrink``: the straightforward numeric baseline (Section 2.1).

Repeatedly halve the extent of an overflowing rectangle on some
non-exhausted attribute until every piece resolves.  Correct, but its
cost depends on the attribute domain sizes (each overflowing rectangle
may be halved ``log(domain)`` times before the tuple counts drop), which
is exactly the weakness rank-shrink removes.

Because it cuts extents at their midpoint, the algorithm needs finite
``[lo, hi]`` bounds on every attribute -- a real crawler would read them
off the search form; experiment harnesses attach observed bounds via
:meth:`repro.dataspace.dataset.Dataset.with_bounds_from_data`.
"""

from __future__ import annotations

from repro.crawl.base import Crawler
from repro.dataspace.space import SpaceKind
from repro.exceptions import InfeasibleCrawlError, SchemaError, UnboundedDomainError
from repro.query.query import Query

__all__ = ["BinaryShrink"]


class BinaryShrink(Crawler):
    """The baseline numeric crawler the paper compares against."""

    name = "binary-shrink"

    def __init__(self, source, *, max_queries: int | None = None):
        super().__init__(source, max_queries=max_queries)
        if self.space.kind is not SpaceKind.NUMERIC:
            raise SchemaError(
                "binary-shrink handles purely numeric spaces; got "
                f"{self.space.kind.value}"
            )
        for attr in self.space:
            if not attr.is_bounded:
                raise UnboundedDomainError(
                    f"binary-shrink needs finite bounds on {attr.name!r}; "
                    "rank-shrink has no such requirement"
                )

    def _execute(self) -> None:
        root = Query.full(self.space)
        for i, attr in enumerate(self.space):
            root = root.with_range(i, attr.lo, attr.hi)
        stack = [root]
        while stack:
            query = stack.pop()
            response = self._run_query(query)
            if response.resolved:
                self._confirm(response.rows)
                continue
            dim = self._first_non_exhausted(query)
            if dim is None:
                raise InfeasibleCrawlError(
                    f"point query {query} overflowed: more than k={self.k} "
                    "duplicates at one point"
                )
            lo, hi = query.extent(dim)
            assert lo is not None and hi is not None and lo < hi
            # Split at x = ceil((lo + hi) / 2); the left part gets
            # [lo, x-1], the right part [x, hi] (paper Section 2.1).
            x = -((lo + hi) // -2)
            q_left, q_right = query.split_2way(dim, x)
            stack.append(q_right)
            stack.append(q_left)

    def _first_non_exhausted(self, query: Query) -> int | None:
        for dim in range(self.space.dimensionality):
            if not query.is_exhausted(dim):
                return dim
        return None
