"""Pluggable crawl transports: sequential, thread, process and async.

A partitioned crawl is a grid of region crawls -- ``plan.bundles[s][i]``
-- each of which is a pure function of (session source, region): a
fresh crawler with a fresh response cache is built per region (see
:func:`~repro.crawl.partition._crawl_region`), and the sources are
deterministic.  Every executor in this module exploits that purity: it
may run the grid in any order, on any substrate, and the merged
:class:`~repro.crawl.partition.PartitionedResult` -- rows ordered by
plan position, costs summed, progress canonically interleaved -- is
byte-identical to the sequential executor's.

The dispatch logic itself lives in :mod:`repro.crawl.runtime`: one
transport-agnostic drive loop (static sessions, work stealing, or
futures dispatch) over :class:`~repro.crawl.runtime.UnitRunner` /
:class:`~repro.crawl.runtime.ResultSink` protocols.  This module only
supplies the transports -- how workers are spawned, how a unit's code
reaches them, and whether sources are shared or copied:

:class:`SequentialExecutor`
    One region after another, in plan order, in the calling thread.
    The reference the others are tested against.
:class:`ThreadExecutor`
    A thread pool in the parent process; sources are shared by
    reference.  Wins on latency-bound sessions: threads overlap the
    per-query round trips.
:class:`ProcessExecutor`
    A :class:`concurrent.futures.ProcessPoolExecutor`; sources and the
    crawler factory are pickled once into each worker (the serving
    stack's lock-dropping ``__getstate__`` paths make servers, clients
    and limits picklable).  Wins on CPU-bound simulated workloads,
    where the GIL caps the thread backend at a single core.  By
    default each worker crawls against its own *copy* of the sources,
    so server-side mutable accounting (limits, server stats) is
    per-worker; with ``shared_limits=True`` the limits, clocks and
    stats move into a shared-state control plane
    (:mod:`repro.crawl.coordinator`) with lease-batched exactly-once
    admission across the whole pool -- real budgets on the multi-core
    backend, at a fraction of the per-query coordinator chatter.
:class:`AsyncExecutor`
    An asyncio event loop coordinating the sessions.  Sources exposing
    an awaitable ``arun(query)`` coroutine (e.g.
    :class:`~repro.server.latency.AsyncLatencySource`, or a web adapter
    wrapped in :class:`~repro.server.client.AwaitableClient`) have
    their I/O waits multiplexed on the loop; the synchronous crawler
    code runs on worker threads and blocks only itself.

Adaptive rebalancing
--------------------
``rebalance=True`` replaces static session dispatch with the
:class:`~repro.crawl.rebalance.WorkStealingScheduler`: an idle worker
steals the tail region of the session with the largest estimated
remaining cost (estimates start from a prior and are updated with the
exact observed cost of every finished region).  A stolen region is
still crawled against *its own session's* source -- its identity keeps
paying the queries -- and its result is filed under its original plan
position, so rebalancing changes wall-clock behaviour only, never the
result.  The one caveat: a source-side *limit* (budget, daily quota)
fires by cumulative query order, which stealing reorders -- parity with
the sequential executor is guaranteed for crawls that complete within
their limits.

Subtree sharding
----------------
``shard_subtrees=N`` drops the unit of scheduling below the region:
regions are *presplit* (:func:`~repro.crawl.sharding.presplit_region`)
into a trunk plus independently crawlable subtree shards, and with
``rebalance=True`` the
:class:`~repro.crawl.rebalance.SubtreeScheduler` lets idle workers
steal whole regions first and then *subqueries of the costliest live
region* -- the only lever that helps when a single heavy region
dominates the plan.  ``shard_subtrees="auto"`` switches from the fixed
per-region target to the estimator-driven
:meth:`~repro.crawl.runtime.ShardPolicy.adaptive` planner, which
presplits only regions whose estimated cost exceeds the fleet's fair
share.  Whichever worker completes a region's last shard splices the
results back in canonical order
(:func:`~repro.crawl.sharding.merge_region_shards`), so the merged
result remains byte-identical to the unsharded sequential executor's
on every backend, under every policy.

Failure semantics (all backends): every region is drained before a
failure propagates, and the exception of the lowest (session, region)
plan position is raised -- except the sequential executor, which stops
at the first failure exactly as it always did.  With
``allow_partial=True`` a budget-interrupted region yields a partial
result instead and the merge is marked incomplete.
"""

from __future__ import annotations

import abc
import asyncio
import functools
import hashlib
import io
import os
import pickle
import warnings
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.crawl.base import Crawler, CrawlResult
from repro.crawl.partition import (
    PartitionedResult,
    PartitionPlan,
    _check_sources,
    _merge_session_results,
)
from repro.crawl.rebalance import (
    CostEstimator,
    RegionKey,
    RegionTask,
    ShardTask,
)
from repro.crawl.runtime import (
    AggregatorFeed,
    BatchSink,
    GridSink,
    LocalUnitRunner,
    ShardPolicy,
    drive_futures,
    drive_session,
    drive_stealing,
    steal_setup,
)
from repro.crawl.spec import CrawlSpec
from repro.exceptions import SchemaError, WorkerDeparted

__all__ = [
    "CrawlExecutor",
    "SequentialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "AsyncExecutor",
    "EXECUTORS",
    "make_executor",
    "default_workers",
    "pickle_payload",
]


def default_workers(sessions: int) -> int:
    """A sensible worker count: one per session, capped at 4x the CPUs.

    Sessions are typically latency-bound, not CPU-bound, so
    oversubscribing the cores is fine; the cap only guards against
    absurd plans.
    """
    return max(1, min(sessions, 4 * (os.cpu_count() or 1)))


def _completed_costs(
    completed: Mapping[RegionKey, CrawlResult],
) -> dict[RegionKey, int]:
    """Exact per-region costs of a resumed crawl's pre-filed results.

    What the schedulers need from a checkpoint: the keys are excluded
    from the queues, the costs seed the stealing estimator with truth
    instead of priors.
    """
    return {key: result.cost for key, result in completed.items()}


class CrawlExecutor(abc.ABC):
    """Runs a partition plan's region grid and merges deterministically.

    Subclasses implement :meth:`_execute` -- the *transport*: spawn
    workers on some substrate and point them at the runtime's drive
    loops (:mod:`repro.crawl.runtime`), which own all scheduling
    semantics.  :meth:`run` owns validation, shard-policy resolution,
    the deterministic merge, and the drain-then-raise failure contract.

    Examples
    --------
    Pick a backend by registry name and crawl a plan; whatever backend
    runs, the merged result is byte-identical::

        from repro import CrawlSpec, TopKServer, make_executor
        from repro import partition_space

        plan = partition_space(dataset.space, 4)
        sources = [TopKServer(dataset, k=64) for _ in range(4)]
        spec = CrawlSpec(
            executor="process", max_workers=4,
            rebalance=True, shard_subtrees=8,
        )
        executor = make_executor(spec=spec)
        merged = executor.run(sources, plan, spec)
        assert merged.complete
    """

    #: Registry name of the backend; subclasses override.
    name: str = "executor"

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(
                f"max_workers must be positive, got {max_workers}"
            )
        self._max_workers = max_workers

    def _workers(self, upper: int) -> int:
        """The effective worker count, capped at ``upper`` tasks."""
        workers = self._max_workers
        if workers is None:
            workers = default_workers(upper)
        return max(1, min(workers, upper))

    def _policy_fleet(self, plan: PartitionPlan, rebalance: bool) -> int:
        """Concurrency the adaptive shard planner should assume.

        The fair-share rule only makes sense against workers that can
        actually *take* a heavy region's shards: without work stealing
        a presplit region's shards are crawled serially by its own
        session's worker, so static dispatch reports a fleet of 1 and
        ``shard_subtrees="auto"`` correctly presplits nothing.
        Single-worker backends override this to 1 outright.
        """
        if not rebalance:
            return 1
        return self._workers(
            max(1, sum(len(bundle) for bundle in plan.bundles))
        )

    def _resolve_spec(
        self, spec: CrawlSpec | None, legacy: dict
    ) -> CrawlSpec:
        """The run configuration: a spec, or legacy kwargs shimmed."""
        if legacy:
            if spec is not None:
                raise TypeError(
                    "pass either spec= or legacy keyword arguments, "
                    "not both"
                )
            unknown = set(legacy) - CrawlSpec.RUN_FIELDS
            if unknown:
                raise TypeError(
                    "run() got unexpected keyword arguments: "
                    f"{sorted(unknown)}"
                )
            warnings.warn(
                "passing crawl configuration as individual keyword "
                "arguments to CrawlExecutor.run() is deprecated; build "
                "a repro.crawl.spec.CrawlSpec and call "
                "run(sources, plan, spec)",
                DeprecationWarning,
                stacklevel=3,
            )
            spec = CrawlSpec(**legacy)
        if spec is None:
            spec = CrawlSpec()
        if spec.executor is not None and spec.executor != self.name:
            raise ValueError(
                f"spec names executor {spec.executor!r} but run() was "
                f"called on the {self.name!r} backend; build the "
                "executor with make_executor(spec=spec) so they cannot "
                "disagree"
            )
        return spec

    def run(
        self,
        sources: Sequence,
        plan: PartitionPlan,
        spec: CrawlSpec | None = None,
        **legacy,
    ) -> PartitionedResult:
        """Crawl every region of ``plan`` and merge deterministically.

        Parameters
        ----------
        sources:
            One query source per bundle, exactly as for
            :func:`~repro.crawl.partition.crawl_partitioned`.
        plan:
            The partition plan; the unit of scheduling is one region
            (or, with ``spec.shard_subtrees``, one subtree shard of
            one).
        spec:
            The crawl configuration, a
            :class:`~repro.crawl.spec.CrawlSpec` (default: a default
            spec).  Its *run half* is consumed here; the field
            semantics are documented on the spec.  A spec whose
            ``executor`` field names a different backend than this
            instance is rejected -- build the instance with
            :func:`make_executor(spec=spec) <make_executor>` so the
            two cannot disagree.
        **legacy:
            The pre-spec keyword arguments (``crawler_factory``,
            ``allow_partial``, ``aggregator``, ``rebalance``,
            ``estimator``, ``shard_subtrees``, ``shared_limits``,
            ``completed``, ``on_region``) are still accepted through a
            :class:`DeprecationWarning` shim that folds them into a
            spec; new code should build the spec directly.

        Raises
        ------
        SchemaError
            If ``sources`` does not match ``plan.sessions``, or a
            ``completed`` key lies outside the plan.
        QueryBudgetExhausted
            When a limit fires and ``allow_partial`` is ``False`` (the
            exception of the lowest failing plan position, after every
            worker drained).
        """
        spec = self._resolve_spec(spec, legacy)
        _check_sources(sources, plan)
        aggregator = spec.aggregator
        if aggregator is not None and aggregator.sessions != plan.sessions:
            raise ValueError(
                f"aggregator tracks {aggregator.sessions} sessions but "
                f"the plan has {plan.sessions}"
            )
        completed = dict(spec.completed or {})
        for session, index in completed:
            if not (
                0 <= session < plan.sessions
                and 0 <= index < len(plan.bundles[session])
            ):
                raise SchemaError(
                    f"completed region ({session}, {index}) lies outside "
                    f"the plan"
                )
        policy = ShardPolicy.resolve(
            spec.shard_subtrees,
            plan,
            spec.estimator,
            self._policy_fleet(plan, spec.rebalance),
        )
        feed = AggregatorFeed(aggregator, plan)
        sink = GridSink(plan, feed, completed, spec.on_region)
        self._execute(
            sources,
            plan,
            sink,
            spec.crawler_factory,
            spec.allow_partial,
            spec.rebalance,
            spec.estimator,
            policy,
            spec.shared_limits,
            completed,
        )
        if sink.failures:
            sink.failures.sort(key=lambda failure: failure[0])
            raise sink.failures[0][1]
        return _merge_session_results(
            plan, tuple(tuple(session) for session in sink.grid)
        )

    @abc.abstractmethod
    def _execute(
        self,
        sources: Sequence,
        plan: PartitionPlan,
        sink: GridSink,
        crawler_factory: Callable[..., Crawler],
        allow_partial: bool,
        rebalance: bool,
        estimator: CostEstimator | None,
        policy: ShardPolicy | None,
        shared_limits: bool,
        completed: Mapping[RegionKey, CrawlResult],
    ) -> None:
        """Spawn workers and point them at the runtime's drive loops."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(max_workers={self._max_workers})"


class SequentialExecutor(CrawlExecutor):
    """The reference backend: plan order, in the calling thread.

    ``rebalance`` is accepted and ignored -- with a single worker there
    is nothing to steal, and the scheduler would hand out exactly the
    plan order anyway.  Stops at the first failure, like the original
    sequential :func:`~repro.crawl.partition.crawl_partitioned`.
    """

    name = "sequential"

    def _policy_fleet(self, plan, rebalance):
        # One worker: no region can be the straggler relative to a
        # fleet, so the adaptive shard planner must presplit nothing.
        return 1

    def _execute(
        self,
        sources,
        plan,
        sink,
        crawler_factory,
        allow_partial,
        rebalance,
        estimator,
        policy,
        shared_limits,
        completed,
    ):
        runner = LocalUnitRunner(
            sources, crawler_factory, allow_partial, feed=sink.feed
        )
        skip = frozenset(completed)
        for session in range(plan.sessions):
            ok = drive_session(
                session, plan.bundles[session], runner, sink, policy, skip
            )
            if not ok:
                # Stopping at the first failure abandons the remaining
                # sessions; mark them cancelled so aggregator snapshots
                # never show a never-started session as running.
                for later in range(session + 1, plan.sessions):
                    sink.feed.cancelled(later)
                return


class ThreadExecutor(CrawlExecutor):
    """One worker thread per session; work stealing when rebalancing.

    Without ``rebalance`` the pool runs one static
    :func:`~repro.crawl.runtime.drive_session` per session; with it,
    ``max_workers`` threads run the shared
    :func:`~repro.crawl.runtime.drive_stealing` loop (worker ``j``
    calls session ``j % sessions`` home).  Sources are shared by
    reference, so limits and stats are exact without any coordination.

    The rebalanced pool is *elastic*: a worker whose loop departs
    (:class:`~repro.exceptions.WorkerDeparted`) has already re-queued
    its in-flight unit, and the parent submits a replacement worker in
    its place; a worker that dies outside the loop's own unit handling
    aborts the scheduler (so surviving workers run dry instead of
    blocking forever on a shard that will never land) and ranks its
    failure after every real region failure.
    """

    name = "thread"

    def _execute(
        self,
        sources,
        plan,
        sink,
        crawler_factory,
        allow_partial,
        rebalance,
        estimator,
        policy,
        shared_limits,
        completed,
    ):
        runner = LocalUnitRunner(
            sources, crawler_factory, allow_partial, feed=sink.feed
        )
        if not rebalance:
            workers = self._workers(plan.sessions)
            skip = frozenset(completed)
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="crawl-session"
            ) as pool:
                tasks = [
                    pool.submit(
                        drive_session,
                        session,
                        plan.bundles[session],
                        runner,
                        sink,
                        policy,
                        skip,
                    )
                    for session in range(plan.sessions)
                ]
                for task in tasks:
                    task.result()
            return
        scheduler, upper = steal_setup(
            plan, estimator, policy, _completed_costs(completed)
        )
        workers = self._workers(upper)
        # An injected departure fault may fire on every unit; cap the
        # replacement submissions so a pathological runner cannot spin
        # the pool forever.  Each real unit can cost at most a few
        # departures before some worker survives long enough to run it.
        max_spawns = 4 * (workers + scheduler.total_tasks)
        aborted = False
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="crawl-steal"
        ) as pool:

            def spawn(worker: int):
                return pool.submit(
                    drive_stealing,
                    scheduler,
                    worker % plan.sessions,
                    runner,
                    sink,
                    policy,
                )

            pending = {spawn(worker) for worker in range(workers)}
            spawned = workers
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    try:
                        ran_dry = future.result()
                    except Exception as exc:  # noqa: BLE001 - see run()
                        # A hard failure outside the loop's own unit
                        # handling: abort so siblings blocked on a live
                        # region's condition run dry, and rank this
                        # failure after every real region failure.
                        scheduler.abort()
                        aborted = True
                        sink.file_batch(
                            [],
                            [((plan.sessions, 0), exc)],
                            update_feed=False,
                        )
                        continue
                    if ran_dry or aborted:
                        continue
                    if spawned < max_spawns:
                        pending.add(spawn(spawned))
                        spawned += 1
                    elif not pending:
                        # Every worker departed and the replacement
                        # budget is spent: abort so the failure is loud
                        # instead of a half-filled grid.
                        scheduler.abort()
                        aborted = True
                        sink.file_batch(
                            [],
                            [
                                (
                                    (plan.sessions, 0),
                                    WorkerDeparted(
                                        "every replacement worker "
                                        "departed; giving up after "
                                        f"{spawned} spawns"
                                    ),
                                )
                            ],
                            update_feed=False,
                        )
        if aborted:
            for session in range(plan.sessions):
                sink.feed.cancelled(session)


# ----------------------------------------------------------------------
# Process transport: per-worker source copies, units over pickle
# ----------------------------------------------------------------------
_WORKER_SOURCES: tuple | None = None
_WORKER_FACTORY: Callable[..., Crawler] | None = None
_WORKER_STUBS: list = []


#: Arrays smaller than this skip content hashing in the payload
#: de-duplicator: the digest would cost more than the bytes it saves.
_DEDUP_MIN_BYTES = 256


def _same_array(array):
    """Unpickle hook of the payload de-duplicator: identity."""
    return array


class _PayloadPickler(pickle.Pickler):
    """Pickler that serialises content-equal numpy arrays once.

    Per-session sources are typically built from one dataset, so their
    engines hold *distinct but content-equal* tuple matrices (each
    ``dataset.rows[order]`` is a fresh array).  Plain pickling ships
    every copy; this pickler hashes large arrays and reduces
    duplicates to a memo reference to the first occurrence, so N
    sessions over one dataset ship one matrix.  Safe because engine
    matrices are immutable by contract -- sharing one unpickled array
    between the worker's source copies changes no response.
    """

    def __init__(self, buffer):
        super().__init__(buffer, protocol=pickle.DEFAULT_PROTOCOL)
        self._seen: dict[tuple, object] = {}

    def reducer_override(self, obj):
        if type(obj) is np.ndarray and obj.nbytes >= _DEDUP_MIN_BYTES:
            key = (
                obj.dtype.str,
                obj.shape,
                hashlib.sha256(np.ascontiguousarray(obj).tobytes()).digest(),
            )
            canonical = self._seen.setdefault(key, obj)
            if canonical is not obj:
                # Pickling the canonical array as an argument hits the
                # stream's memo: a few bytes instead of a full copy.
                return (_same_array, (canonical,))
        return NotImplemented


def pickle_payload(sources, crawler_factory, stubs=()) -> bytes:
    """Pickle ``(sources, crawler_factory, stubs)`` in one stream.

    One stream matters: pickle memoisation preserves object identity
    *within* a payload, so the shared-limit stubs referenced by the
    source clones unpickle as the very objects in the ``stubs`` tuple --
    flushing those flushes the sources' leases.  The stream is written
    by :class:`_PayloadPickler`, so content-equal engine matrices ship
    once, and the engines' derived caches (row tuples, lazy indexes)
    are trimmed by their pickle hooks -- the payload carries data, not
    rebuildable state.  Raises a :class:`TypeError` naming the usual
    culprit (a lambda factory) when anything in the payload refuses to
    pickle.
    """
    try:
        buffer = io.BytesIO()
        _PayloadPickler(buffer).dump(
            (tuple(sources), crawler_factory, tuple(stubs))
        )
        return buffer.getvalue()
    except Exception as exc:
        raise TypeError(
            "the process executor needs picklable sources and a "
            "picklable crawler_factory (a class or functools.partial, "
            f"not a lambda): {exc}"
        ) from exc


def _process_init(payload: bytes) -> None:
    """Pool initializer: unpickle the sources once per worker process.

    The payload also carries the coordinator's shared-limit stubs
    (empty except under ``shared_limits``); pickled in one stream with
    the sources, the unpickled stubs are exactly the objects the source
    clones reference, so the worker's runners can flush leases and
    buffered stats at every region boundary.
    """
    global _WORKER_SOURCES, _WORKER_FACTORY, _WORKER_STUBS
    _WORKER_SOURCES, _WORKER_FACTORY, stubs = pickle.loads(payload)
    _WORKER_STUBS = list(stubs)


def _flush_worker_stubs() -> None:
    """Return leases / land buffered stats for this worker's stubs."""
    for stub in _WORKER_STUBS:
        stub.flush()


def _worker_runner(allow_partial: bool) -> LocalUnitRunner:
    """This pool worker's runner over its unpickled source copies."""
    assert _WORKER_SOURCES is not None and _WORKER_FACTORY is not None
    return LocalUnitRunner(
        _WORKER_SOURCES,
        _WORKER_FACTORY,
        allow_partial,
        flush=_flush_worker_stubs if _WORKER_STUBS else None,
    )


def _pool_session(
    session: int,
    bundle,
    allow_partial: bool,
    policy,
    skip: frozenset = frozenset(),
):
    """Wire form of :func:`~repro.crawl.runtime.drive_session`."""
    sink = BatchSink()
    drive_session(
        session, bundle, _worker_runner(allow_partial), sink, policy, skip
    )
    return sink.batch


def _pool_region(session: int, index: int, region, allow_partial: bool):
    """Crawl one region in a pool worker, against the worker's copy."""
    return _worker_runner(allow_partial).region(
        RegionTask(session, index, region)
    )


def _pool_presplit(
    session: int, index: int, region, allow_partial: bool, max_shards: int
):
    """Presplit one region in a pool worker; the plan pickles back."""
    return _worker_runner(allow_partial).presplit(
        RegionTask(session, index, region), max_shards
    )


def _pool_shard(session: int, index: int, region, shard, allow_partial: bool):
    """Crawl one subtree shard in a pool worker.

    The shard may run in a different worker than its region's presplit
    did; both crawl deterministic *copies* of the session source, so
    the responses -- and therefore the results -- are identical (the
    per-worker copy semantics the process backend documents).
    """
    return _worker_runner(allow_partial).shard(
        ShardTask(session, index, region, shard)
    )


def _pool_steal(
    scheduler, plane, home_session: int, allow_partial: bool, policy
):
    """Wire form of :func:`~repro.crawl.runtime.drive_stealing`.

    The scheduler lives in the coordinator process; ``acquire`` /
    ``complete`` / ``publish`` go through its proxy, so this worker
    steals regions -- and, under a shard policy, subtree shards of live
    regions -- from *other workers' sessions* the moment its own run
    dry, across process boundaries.  Completed results are batched into
    the return value (they would be dead weight in the coordinator);
    completions and failures are additionally pushed to the control
    plane as compact progress events for the parent's live aggregator
    feed.

    Returns ``(results, failures, drained)``; ``drained=False`` means
    the worker *departed* mid-crawl (its in-flight unit is already back
    on the shared queue, its leases flushed) and the parent should
    submit a replacement to keep the fleet at strength.
    """
    sink = BatchSink(plane)
    drained = drive_stealing(
        scheduler, home_session, _worker_runner(allow_partial), sink, policy
    )
    results, failures = sink.batch
    return results, failures, drained


class ProcessExecutor(CrawlExecutor):
    """Region crawls on a process pool, for CPU-bound simulated engines.

    Sources and the crawler factory are pickled once and shipped to
    each worker via the pool initializer (so per-task overhead is a few
    integers, not a dataset).  Requires the serving stack's picklable
    paths: servers, clients, limits and engines all drop their locks on
    pickle and rebuild them on load.  Cache listeners do not survive
    the trip, and each worker mutates its own *copy* of the sources --
    which is fine for limit-free simulation workloads, and wrong for
    limit-bearing ones (each copy admits independently).  For those,
    ``shared_limits=True`` moves the authoritative limits, clocks and
    server stats into a coordinator process
    (:mod:`repro.crawl.coordinator`): every worker admits through a
    thin proxy with **lease-batched** exactly-once semantics (budget
    chunks sized from the estimator's per-region cost estimates, or
    ``lease_chunk`` explicitly), and the caller's original limit
    objects read the exact charged totals -- and the fleet's
    coordinator ``round_trips`` -- after the crawl (also after an
    exhaustion failure).

    Without ``rebalance``, one pool task per session preserves the
    thread backend's dispatch shape.  With ``rebalance``, the parent
    runs the runtime's futures dispatcher
    (:func:`~repro.crawl.runtime.drive_futures`), always picking from
    the session with the largest estimated remaining cost -- except
    under ``shared_limits``, where the scheduler itself is hosted in
    the coordinator and every worker runs the runtime's pull loop
    against it (two-level when a shard policy is set).

    Progress reporting is completion-grained: the aggregator sees a
    session advance when a region (or, without rebalancing, a bundle)
    finishes, not per query.
    """

    name = "process"

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        mp_context=None,
        lease_chunk: int | None = None,
    ):
        super().__init__(max_workers)
        self._mp_context = mp_context
        if lease_chunk is not None and lease_chunk < 1:
            raise ValueError(
                f"lease_chunk must be positive, got {lease_chunk}"
            )
        self._lease_chunk = lease_chunk
        #: Bytes of the last payload shipped to the pool initializer.
        self.payload_bytes = 0

    def _workers(self, upper: int) -> int:
        """Default to the core count, not the thread executor's 4x cap.

        Oversubscription pays off for latency-bound threads; worker
        *processes* exist for CPU-bound work, where anything beyond the
        cores adds only spawn time and a per-worker copy of the
        sources.
        """
        workers = self._max_workers
        if workers is None:
            workers = os.cpu_count() or 1
        return max(1, min(workers, upper))

    def _payload(self, sources, crawler_factory, stubs=()) -> bytes:
        payload = pickle_payload(sources, crawler_factory, stubs)
        # Operator-side introspection: the bytes shipped per worker at
        # pool start-up (benchmarks gate this; see bench_hot_path.py).
        self.payload_bytes = len(payload)
        return payload

    def _execute(
        self,
        sources,
        plan,
        sink,
        crawler_factory,
        allow_partial,
        rebalance,
        estimator,
        policy,
        shared_limits,
        completed,
    ):
        if shared_limits:
            self._execute_shared(
                sources,
                plan,
                sink,
                crawler_factory,
                allow_partial,
                rebalance,
                estimator,
                policy,
                completed,
            )
            return
        payload = self._payload(sources, crawler_factory)
        workers = self._workers(self._pool_upper(plan, rebalance, policy))
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=self._mp_context,
            initializer=_process_init,
            initargs=(payload,),
        ) as pool:
            if rebalance:
                self._drain_rebalanced(
                    pool,
                    workers,
                    plan,
                    sink,
                    allow_partial,
                    estimator,
                    policy,
                    completed,
                )
            else:
                self._drain_static(
                    pool, plan, sink, allow_partial, policy, completed
                )

    @staticmethod
    def _pool_upper(plan, rebalance, policy) -> int:
        """How many pool workers the plan can possibly keep busy."""
        if rebalance:
            upper = sum(len(bundle) for bundle in plan.bundles)
            if policy is not None:
                upper = max(upper, policy.max_budget)
            return max(1, upper)
        return max(1, plan.sessions)

    def _execute_shared(
        self,
        sources,
        plan,
        sink,
        crawler_factory,
        allow_partial,
        rebalance,
        estimator,
        policy,
        completed,
    ):
        """The shared-limit mode: one authoritative copy of every limit.

        A :class:`~repro.crawl.coordinator.LimitCoordinator` owns the
        sources' limits, clocks and stats for the duration of the
        crawl; the pool receives rewired source clones whose admissions
        all charge the coordinator -- in budget chunks sized from the
        estimator (or ``lease_chunk``), not per query.  With
        ``rebalance`` the scheduler is hosted there too and workers run
        the runtime's pull loop against it -- cross-process stealing.
        Whatever happens, the authoritative counters are written back
        into the caller's original objects, so ``budget.used`` is exact
        even after an exhaustion failure.
        """
        from repro.crawl.coordinator import (
            LimitCoordinator,
            lease_chunk_for_plan,
        )

        with LimitCoordinator(mp_context=self._mp_context) as coordinator:
            try:
                shared_sources = coordinator.share_sources(sources)
                workers = self._workers(
                    self._pool_upper(plan, rebalance, policy)
                )
                chunk = self._lease_chunk
                if chunk is None:
                    chunk = coordinator.clamp_lease_chunk(
                        lease_chunk_for_plan(plan, estimator), workers
                    )
                coordinator.set_lease_chunk(chunk)
                payload = self._payload(
                    shared_sources,
                    crawler_factory,
                    coordinator.shared_stubs(),
                )
                with ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=self._mp_context,
                    initializer=_process_init,
                    initargs=(payload,),
                ) as pool:
                    if rebalance:
                        self._drain_shared_rebalanced(
                            pool,
                            workers,
                            plan,
                            sink,
                            allow_partial,
                            estimator,
                            policy,
                            coordinator,
                            completed,
                        )
                    else:
                        self._drain_static(
                            pool, plan, sink, allow_partial, policy, completed
                        )
            finally:
                coordinator.writeback()

    def _drain_static(
        self, pool, plan, sink, allow_partial, policy, completed
    ):
        """One pool task per session, each a worker-side session loop."""
        skip = frozenset(completed)
        tasks = {
            pool.submit(
                _pool_session,
                session,
                plan.bundles[session],
                allow_partial,
                policy,
                skip,
            ): session
            for session in range(plan.sessions)
        }
        for future, session in tasks.items():
            bundle = plan.bundles[session]
            try:
                results, failures = future.result()
            except Exception as exc:  # noqa: BLE001 - re-raised by run()
                if bundle:
                    sink.region_failed((session, 0), session, exc)
                else:
                    # An empty bundle has no region to attribute a pool
                    # failure to (its session is already marked done).
                    sink.file_batch(
                        [], [((session, 0), exc)], update_feed=False
                    )
                continue
            sink.file_batch(results, failures)

    def _drain_rebalanced(
        self,
        pool,
        workers,
        plan,
        sink,
        allow_partial,
        estimator,
        policy,
        completed,
    ):
        """Parent-side futures dispatch over the per-copy pool.

        The pool workers cannot see the parent's scheduler, so the
        parent runs :func:`~repro.crawl.runtime.drive_futures`: it is
        the only dispatcher, acquiring units non-blockingly and
        shipping each to the pool as its own future.  A unit raising
        :class:`~repro.exceptions.WorkerDeparted` is re-queued by the
        dispatcher and re-submitted to a surviving pool slot.
        """
        scheduler, _ = steal_setup(
            plan, estimator, policy, _completed_costs(completed)
        )

        def submit(task, budget):
            if isinstance(task, ShardTask):
                return pool.submit(
                    _pool_shard,
                    task.session,
                    task.index,
                    task.region,
                    task.shard,
                    allow_partial,
                )
            if budget is not None:
                return pool.submit(
                    _pool_presplit,
                    task.session,
                    task.index,
                    task.region,
                    allow_partial,
                    budget,
                )
            return pool.submit(
                _pool_region,
                task.session,
                task.index,
                task.region,
                allow_partial,
            )

        drive_futures(scheduler, submit, sink, workers, policy)

    def _drain_shared_rebalanced(
        self,
        pool,
        workers,
        plan,
        sink,
        allow_partial,
        estimator,
        policy,
        coordinator,
        completed,
    ):
        """Worker-pull dispatch over a coordinator-hosted scheduler.

        Unlike the per-worker-copy rebalanced mode (where the parent
        is the only dispatcher), every pool worker runs the runtime's
        :func:`~repro.crawl.runtime.drive_stealing` loop against the
        shared scheduler, so stealing decisions and exact observed-cost
        feedback cross process boundaries without a parent round trip
        per task.  The parent meanwhile relays the workers' progress
        events into the aggregator feed and collects each worker's
        result batch as its loop drains.  The fleet is *elastic*: a
        worker whose loop departed (``drained=False``) already
        re-queued its unit and flushed its leases, and the parent
        submits a replacement pull loop in its place.
        """
        scheduler = coordinator.make_scheduler(
            plan.bundles,
            estimator,
            subtree=policy is not None and policy.sharded,
            completed=_completed_costs(completed),
        )
        # Per-region progress events exist only for a live aggregator
        # view; without one, streaming them would be pure control-plane
        # chatter (one round trip per region for nobody to read).
        plane = coordinator.plane if sink.feed.active else None

        def spawn(worker: int):
            return pool.submit(
                _pool_steal,
                scheduler,
                plane,
                worker % plan.sessions,
                allow_partial,
                policy,
            )

        pending = {spawn(worker) for worker in range(workers)}
        spawned = workers
        # Replacement budget; mirrors the thread backend's elastic cap.
        total_regions = sum(len(b) for b in plan.bundles) - len(completed)
        max_spawns = 4 * (workers + max(1, total_regions))
        aborted = False
        while pending:
            done, pending = wait(
                pending, timeout=0.05, return_when=FIRST_COMPLETED
            )
            self._relay_events(coordinator, sink.feed)
            for future in done:
                try:
                    results, worker_failures, drained = future.result()
                except Exception as exc:  # noqa: BLE001 - re-raised by run()
                    # A worker loop died outside its per-task handling
                    # (e.g. the process was killed).  Its in-flight
                    # task would block the drain forever; abort so the
                    # surviving workers run dry, and rank this failure
                    # after every real region failure.
                    scheduler.abort()
                    aborted = True
                    sink.file_batch(
                        [], [((plan.sessions, 0), exc)], update_feed=False
                    )
                    continue
                sink.file_batch(results, worker_failures, update_feed=False)
                if drained or aborted:
                    continue
                if spawned < max_spawns:
                    pending.add(spawn(spawned))
                    spawned += 1
                elif not pending:
                    scheduler.abort()
                    aborted = True
                    sink.file_batch(
                        [],
                        [
                            (
                                (plan.sessions, 0),
                                WorkerDeparted(
                                    "every replacement worker departed; "
                                    f"giving up after {spawned} spawns"
                                ),
                            )
                        ],
                        update_feed=False,
                    )
        self._relay_events(coordinator, sink.feed)
        if aborted:
            for session in range(plan.sessions):
                sink.feed.cancelled(session)
        if estimator is not None:
            for key, cost in scheduler.completed_costs().items():
                estimator.record(key, cost)

    @staticmethod
    def _relay_events(coordinator, feed):
        """Translate worker progress events into aggregator updates."""
        if not feed.active:
            return
        for event in coordinator.plane.pop_events():
            if event[0] == "region":
                _, session, index, cost, tuples = event
                feed.region_counts(session, index, cost, tuples)
            elif event[0] == "failed":
                feed.failed_session(event[1])


# ----------------------------------------------------------------------
# Async transport: event-loop coordination, awaitable sources bridged
# ----------------------------------------------------------------------
class _LoopBridge:
    """Sync facade over an awaitable source, for crawler worker threads.

    ``run`` schedules the source's ``arun`` coroutine on the executor's
    event loop and blocks *the calling worker thread* (never the loop)
    until the response arrives -- so many sessions' waits multiplex on
    one loop while the unchanged synchronous crawlers drive them.
    """

    def __init__(self, source, loop: asyncio.AbstractEventLoop):
        self._source = source
        self._loop = loop

    @property
    def space(self):
        """The underlying data space; the bridge is transparent."""
        return self._source.space

    @property
    def k(self) -> int:
        """The underlying retrieval limit."""
        return self._source.k

    def run(self, query):
        """Await ``arun(query)`` on the loop from a worker thread."""
        future = asyncio.run_coroutine_threadsafe(
            self._source.arun(query), self._loop
        )
        return future.result()

    def __repr__(self) -> str:
        return f"_LoopBridge({self._source!r})"


def _bridge_source(source, loop: asyncio.AbstractEventLoop):
    """Wrap awaitable sources (those with an ``arun`` coroutine)."""
    arun = getattr(source, "arun", None)
    if arun is None or not asyncio.iscoroutinefunction(arun):
        return source
    return _LoopBridge(source, loop)


class AsyncExecutor(CrawlExecutor):
    """Asyncio-coordinated sessions over (optionally) awaitable sources.

    Each session's crawl runs on a worker thread (the crawlers are
    synchronous), but a source exposing an ``arun(query)`` coroutine --
    :class:`~repro.server.latency.AsyncLatencySource`, an
    :class:`~repro.server.client.AwaitableClient` over a web adapter --
    is awaited on the executor's event loop, so simulated round trips
    and future async I/O multiplex there instead of pinning threads in
    ``time.sleep``.  Purely synchronous sources work unchanged.  The
    worker threads run the exact same runtime drive loops as the
    thread backend, just over bridged sources.

    Must be called from a thread with no running event loop (it owns
    one for the duration of the crawl).
    """

    name = "async"

    def _execute(
        self,
        sources,
        plan,
        sink,
        crawler_factory,
        allow_partial,
        rebalance,
        estimator,
        policy,
        shared_limits,
        completed,
    ):
        asyncio.run(
            self._amain(
                sources,
                plan,
                sink,
                crawler_factory,
                allow_partial,
                rebalance,
                estimator,
                policy,
                completed,
            )
        )

    async def _amain(
        self,
        sources,
        plan,
        sink,
        crawler_factory,
        allow_partial,
        rebalance,
        estimator,
        policy,
        completed,
    ):
        loop = asyncio.get_running_loop()
        bridged = [_bridge_source(source, loop) for source in sources]
        runner = LocalUnitRunner(
            bridged, crawler_factory, allow_partial, feed=sink.feed
        )
        # Session loops run on a dedicated pool, NEVER asyncio's shared
        # default executor: an awaitable source's ``arun`` may itself
        # need a default-executor thread (AwaitableClient does), and
        # session loops blocking in _LoopBridge.run while occupying
        # every default-pool slot would deadlock the crawl.
        if rebalance:
            scheduler, upper = steal_setup(
                plan, estimator, policy, _completed_costs(completed)
            )
            workers = self._workers(upper)
            rejoin_cap = 4 * (workers + scheduler.total_tasks)

            def drive_elastic(home_session: int) -> None:
                # A departed worker's thread is still a perfectly good
                # pool slot, so elasticity here is a rejoin: re-enter
                # the loop (the departed iteration already re-queued
                # its unit).  Past the cap, abort *before* giving up so
                # sibling loops run dry instead of deadlocking the
                # gather, and rank the failure after every real one.
                for _ in range(rejoin_cap):
                    if drive_stealing(
                        scheduler, home_session, runner, sink, policy
                    ):
                        return
                scheduler.abort()
                sink.file_batch(
                    [],
                    [
                        (
                            (plan.sessions, 0),
                            WorkerDeparted(
                                f"worker of session {home_session} "
                                f"departed {rejoin_cap} times; giving up"
                            ),
                        )
                    ],
                    update_feed=False,
                )
                for session in range(plan.sessions):
                    sink.feed.cancelled(session)

            jobs = [
                functools.partial(drive_elastic, worker % plan.sessions)
                for worker in range(workers)
            ]
        else:
            workers = self._workers(plan.sessions)
            skip = frozenset(completed)
            jobs = [
                functools.partial(
                    drive_session,
                    session,
                    plan.bundles[session],
                    runner,
                    sink,
                    policy,
                    skip,
                )
                for session in range(plan.sessions)
            ]
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="crawl-async"
        ) as pool:
            await asyncio.gather(
                *(loop.run_in_executor(pool, job) for job in jobs)
            )


#: Backend registry, keyed by the CLI's ``--executor`` names.
EXECUTORS: dict[str, type[CrawlExecutor]] = {
    "sequential": SequentialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
    "async": AsyncExecutor,
}


def make_executor(
    name: str | None = None,
    *,
    max_workers: int | None = None,
    spec: CrawlSpec | None = None,
) -> CrawlExecutor:
    """Build a backend by registry name (see :data:`EXECUTORS`).

    With ``spec=`` the backend half of a
    :class:`~repro.crawl.spec.CrawlSpec` drives construction: the
    registry name comes from ``spec.executor`` (explicit ``name`` wins,
    ``"thread"`` if neither is set), ``spec.max_workers`` fills in when
    ``max_workers`` is not given, and backend-specific knobs ride along
    -- today ``spec.lease_chunk`` reaches the process backend's
    constructor, which has no other spec-able home.

    Examples
    --------
    ::

        spec = CrawlSpec(executor="process", max_workers=4, lease_chunk=8)
        executor = make_executor(spec=spec)
        merged = executor.run(sources, plan, spec)
    """
    if spec is not None:
        if name is None:
            name = spec.executor or "thread"
        if max_workers is None:
            max_workers = spec.max_workers
    elif name is None:
        raise TypeError("make_executor() needs a name or a spec")
    try:
        cls = EXECUTORS[name]
    except KeyError:
        known = ", ".join(sorted(EXECUTORS))
        raise ValueError(
            f"unknown executor {name!r}; expected one of: {known}"
        ) from None
    if (
        spec is not None
        and spec.lease_chunk is not None
        and cls is ProcessExecutor
    ):
        return cls(max_workers=max_workers, lease_chunk=spec.lease_chunk)
    return cls(max_workers=max_workers)
