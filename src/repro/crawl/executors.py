"""Pluggable crawl executors: sequential, thread, process and async.

A partitioned crawl is a grid of region crawls -- ``plan.bundles[s][i]``
-- each of which is a pure function of (session source, region): a
fresh crawler with a fresh response cache is built per region (see
:func:`~repro.crawl.partition._crawl_region`), and the sources are
deterministic.  Every executor in this module exploits that purity: it
may run the grid in any order, on any substrate, and the merged
:class:`~repro.crawl.partition.PartitionedResult` -- rows ordered by
plan position, costs summed, progress canonically interleaved -- is
byte-identical to the sequential executor's.

Backends
--------
:class:`SequentialExecutor`
    One region after another, in plan order, in the calling thread.
    The reference the others are tested against.
:class:`ThreadExecutor`
    One worker thread per session (PR 1's behaviour).  Wins on
    latency-bound sessions: threads overlap the per-query round trips.
:class:`ProcessExecutor`
    A :class:`concurrent.futures.ProcessPoolExecutor`; sources and the
    crawler factory are pickled once into each worker (the serving
    stack's lock-dropping ``__getstate__`` paths make servers, clients
    and limits picklable).  Wins on CPU-bound simulated workloads,
    where the GIL caps the thread backend at a single core.  By
    default each worker crawls against its own *copy* of the sources,
    so server-side mutable accounting (limits, server stats) is
    per-worker; with ``shared_limits=True`` the limits, clocks and
    stats move into a shared-state control plane
    (:mod:`repro.crawl.coordinator`) and admission is exactly-once
    across the whole pool -- real budgets on the multi-core backend.
:class:`AsyncExecutor`
    An asyncio event loop coordinating the sessions.  Sources exposing
    an awaitable ``arun(query)`` coroutine (e.g.
    :class:`~repro.server.latency.AsyncLatencySource`, or a web adapter
    wrapped in :class:`~repro.server.client.AwaitableClient`) have
    their I/O waits multiplexed on the loop; the synchronous crawler
    code runs on worker threads and blocks only itself.

Adaptive rebalancing
--------------------
``rebalance=True`` replaces static session dispatch with the
:class:`~repro.crawl.rebalance.WorkStealingScheduler`: an idle worker
steals the tail region of the session with the largest estimated
remaining cost (estimates start from a prior and are updated with the
exact observed cost of every finished region).  A stolen region is
still crawled against *its own session's* source -- its identity keeps
paying the queries -- and its result is filed under its original plan
position, so rebalancing changes wall-clock behaviour only, never the
result.  The one caveat: a source-side *limit* (budget, daily quota)
fires by cumulative query order, which stealing reorders -- parity with
the sequential executor is guaranteed for crawls that complete within
their limits.

Subtree sharding
----------------
``shard_subtrees=N`` drops the unit of scheduling below the region:
each region is *presplit* (:func:`~repro.crawl.sharding.presplit_region`)
into a trunk plus up to ``N`` independently crawlable subtree shards,
and with ``rebalance=True`` the
:class:`~repro.crawl.rebalance.SubtreeScheduler` lets idle workers
steal whole regions first and then *subqueries of the costliest live
region* -- the only lever that helps when a single heavy region
dominates the plan.  Whichever worker completes a region's last shard
splices the results back in canonical order
(:func:`~repro.crawl.sharding.merge_region_shards`), so the merged
result remains byte-identical to the unsharded sequential executor's
on every backend.

Failure semantics (all backends): every region is drained before a
failure propagates, and the exception of the lowest (session, region)
plan position is raised -- except the sequential executor, which stops
at the first failure exactly as it always did.  With
``allow_partial=True`` a budget-interrupted region yields a partial
result instead and the merge is marked incomplete.
"""

from __future__ import annotations

import abc
import asyncio
import functools
import os
import pickle
import threading
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import Callable, Sequence

from repro.crawl.base import (
    Crawler,
    CrawlResult,
    ProgressAggregator,
    ProgressPoint,
)
from repro.crawl.hybrid import Hybrid
from repro.crawl.partition import (
    PartitionedResult,
    PartitionPlan,
    _check_sources,
    _crawl_region,
    _merge_session_results,
)
from repro.crawl.rebalance import (
    CostEstimator,
    RegionCompletion,
    RegionTask,
    ShardTask,
    SubtreeScheduler,
    WorkStealingScheduler,
)
from repro.crawl.sharding import (
    crawl_shard,
    merge_region_shards,
    presplit_region,
)

__all__ = [
    "CrawlExecutor",
    "SequentialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "AsyncExecutor",
    "EXECUTORS",
    "make_executor",
    "default_workers",
]


def default_workers(sessions: int) -> int:
    """A sensible worker count: one per session, capped at 4x the CPUs.

    Sessions are typically latency-bound, not CPU-bound, so
    oversubscribing the cores is fine; the cap only guards against
    absurd plans.
    """
    return max(1, min(sessions, 4 * (os.cpu_count() or 1)))


class _AggregatorFeed:
    """Per-session progress and terminal-state bookkeeping.

    Translates region-level progress samples into the session-level
    absolute (queries, tuples) points a
    :class:`~repro.crawl.base.ProgressAggregator` expects, tolerating
    regions of one session running concurrently (after a steal).  Also
    marks sessions ``done`` when their last region lands and ``failed``
    when a region crawl raises, so aggregator snapshots never show a
    dead worker as in-flight.
    """

    def __init__(
        self, aggregator: ProgressAggregator | None, plan: PartitionPlan
    ):
        self._aggregator = aggregator
        self._lock = threading.Lock()
        self._done = [[0, 0] for _ in plan.bundles]
        # Live points keyed by the unit's live_key -- a region and the
        # subtree shards split off it report independently.
        self._live: list[dict[tuple, ProgressPoint]] = [
            {} for _ in plan.bundles
        ]
        self._outstanding = [len(bundle) for bundle in plan.bundles]
        if aggregator is not None:
            for session, bundle in enumerate(plan.bundles):
                if not bundle:
                    aggregator.mark_done(session)

    def listener(
        self, task: RegionTask | ShardTask
    ) -> Callable[[ProgressPoint], None] | None:
        """The progress listener to attach to ``task``'s crawler."""
        if self._aggregator is None:
            return None

        def report(point: ProgressPoint) -> None:
            # The aggregator call stays under the feed lock: computing
            # the total and publishing it must be atomic, or a stale
            # total from a preempted worker could overwrite a newer one
            # (regions of one session run concurrently after a steal).
            with self._lock:
                self._live[task.session][task.live_key] = point
                self._aggregator.report(
                    task.session, self._session_total(task.session)
                )

        return report

    def _session_total(self, session: int) -> ProgressPoint:
        # Caller holds self._lock.
        queries, tuples = self._done[session]
        for point in self._live[session].values():
            queries += point.queries
            tuples += point.tuples
        return ProgressPoint(queries, tuples)

    def finished(self, task: RegionTask, result: CrawlResult) -> None:
        """Fold a finished region into its session's running totals."""
        self.region_finished(task.session, task.index, result)

    def region_finished(
        self, session: int, index: int, result: CrawlResult
    ) -> None:
        """Fold a region's merged result, clearing its live units.

        With subtree sharding, a region's trunk and each of its shards
        report live points under separate keys; once the region merges,
        every key of that region (``live_key[1] == index``) is replaced
        by the exact merged totals.
        """
        self.region_counts(session, index, result.cost, len(result.rows))

    def region_counts(
        self, session: int, index: int, cost: int, tuples: int
    ) -> None:
        """Fold a finished region given its bare (cost, tuples) counts.

        The wire form of :meth:`region_finished`: the shared-limit
        process mode relays region completions from pool workers as
        compact events, not result objects (those return with the
        worker's final batch), so the live aggregator view advances as
        regions land rather than when the pool drains.
        """
        if self._aggregator is None:
            return
        with self._lock:
            live = self._live[session]
            for key in [k for k in live if k[1] == index]:
                del live[key]
            self._done[session][0] += cost
            self._done[session][1] += tuples
            self._outstanding[session] -= 1
            # Atomic with the total's computation; see listener().
            self._aggregator.report(session, self._session_total(session))
            if self._outstanding[session] == 0:
                self._aggregator.mark_done(session)

    def failed(self, task: RegionTask | ShardTask) -> None:
        """Mark the session of a raising region (or shard) as failed."""
        self.failed_session(task.session)

    def failed_session(self, session: int) -> None:
        """Mark ``session`` failed (the session-index wire form)."""
        if self._aggregator is None:
            return
        self._aggregator.mark_failed(session)

    def cancelled(self, session: int) -> None:
        """Mark a session the executor abandoned before running it.

        A no-op for sessions already terminal (e.g. an empty bundle
        marked done at construction).
        """
        if self._aggregator is None:
            return
        if not self._aggregator.state(session).terminal:
            self._aggregator.mark_cancelled(session)


#: One recorded failure: the region's plan position and its exception.
_Failure = tuple[tuple[int, int], Exception]


def _run_region(
    sources: Sequence,
    task: RegionTask,
    grid,
    failures: list[_Failure],
    failures_lock: threading.Lock,
    feed: _AggregatorFeed,
    crawler_factory: Callable[..., Crawler],
    allow_partial: bool,
    scheduler: WorkStealingScheduler | None = None,
) -> bool:
    """Crawl one region, file the outcome, and report success."""
    try:
        result = _crawl_region(
            sources[task.session],
            task.region,
            crawler_factory=crawler_factory,
            allow_partial=allow_partial,
            listener=feed.listener(task),
        )
    except Exception as exc:  # noqa: BLE001 - re-raised after the drain
        if scheduler is not None:
            scheduler.fail(task)
        with failures_lock:
            failures.append((task.key, exc))
        feed.failed(task)
        return False
    if scheduler is not None:
        scheduler.complete(task, result.cost)
    grid[task.session][task.index] = result
    feed.finished(task, result)
    return True


def _session_loop(
    session: int,
    sources: Sequence,
    plan: PartitionPlan,
    grid,
    failures: list[_Failure],
    failures_lock: threading.Lock,
    feed: _AggregatorFeed,
    crawler_factory: Callable[..., Crawler],
    allow_partial: bool,
    max_shards: int | None = None,
) -> None:
    """Static dispatch: crawl one session's regions in plan order.

    With ``max_shards`` set, each region goes through the sharded unit
    of work (presplit, shards in canonical order, merge) instead of a
    single whole-region crawl -- same result, same failure semantics.
    """
    for index, region in enumerate(plan.bundles[session]):
        task = RegionTask(session, index, region)
        if max_shards is not None:
            ok = _run_sharded_region(
                sources,
                task,
                grid,
                failures,
                failures_lock,
                feed,
                crawler_factory,
                allow_partial,
                max_shards,
            )
        else:
            ok = _run_region(
                sources,
                task,
                grid,
                failures,
                failures_lock,
                feed,
                crawler_factory,
                allow_partial,
            )
        if not ok:
            return


def _steal_loop(
    scheduler: WorkStealingScheduler,
    home_session: int,
    sources: Sequence,
    grid,
    failures: list[_Failure],
    failures_lock: threading.Lock,
    feed: _AggregatorFeed,
    crawler_factory: Callable[..., Crawler],
    allow_partial: bool,
) -> None:
    """Work-stealing dispatch: drain the scheduler until it runs dry."""
    while True:
        task = scheduler.acquire(home_session)
        if task is None:
            return
        _run_region(
            sources,
            task,
            grid,
            failures,
            failures_lock,
            feed,
            crawler_factory,
            allow_partial,
            scheduler=scheduler,
        )


# ----------------------------------------------------------------------
# Subtree sharding: region units become (presplit -> shards -> merge)
# ----------------------------------------------------------------------
def _run_sharded_region(
    sources: Sequence,
    task: RegionTask,
    grid,
    failures: list[_Failure],
    failures_lock: threading.Lock,
    feed: _AggregatorFeed,
    crawler_factory: Callable[..., Crawler],
    allow_partial: bool,
    max_shards: int,
) -> bool:
    """Presplit one region, crawl its shards in canonical order, merge.

    The single-worker counterpart of the two-level steal loop: same
    decomposition, same merge, no concurrency -- which is exactly what
    makes the sharded sequential executor the parity reference for the
    sharded parallel backends.
    """
    try:
        plan = presplit_region(
            sources[task.session],
            task.region,
            crawler_factory=crawler_factory,
            allow_partial=allow_partial,
            max_shards=max_shards,
            listener=feed.listener(task),
        )
        results = []
        for shard in plan.shards:
            shard_task = ShardTask(
                task.session, task.index, task.region, shard
            )
            results.append(
                crawl_shard(
                    sources[task.session],
                    task.region,
                    shard,
                    allow_partial=allow_partial,
                    listener=feed.listener(shard_task),
                )
            )
        result = merge_region_shards(plan, results)
    except Exception as exc:  # noqa: BLE001 - re-raised after the drain
        with failures_lock:
            failures.append((task.key, exc))
        feed.failed(task)
        return False
    grid[task.session][task.index] = result
    feed.region_finished(task.session, task.index, result)
    return True


def _finish_completion(
    scheduler: SubtreeScheduler,
    completion: RegionCompletion,
    grid,
    failures: list[_Failure],
    failures_lock: threading.Lock,
    feed: _AggregatorFeed,
) -> None:
    """Merge a drained region's shards and file the result."""
    task = completion.task
    try:
        result = merge_region_shards(completion.plan, completion.results)
    except Exception as exc:  # noqa: BLE001 - re-raised after the drain
        scheduler.fail_region(task.key)
        with failures_lock:
            failures.append((task.key, exc))
        feed.failed(task)
        return
    scheduler.complete_region(task.key, result.cost)
    grid[task.session][task.index] = result
    feed.region_finished(task.session, task.index, result)


def _sharded_steal_loop(
    scheduler: SubtreeScheduler,
    home_session: int,
    sources: Sequence,
    grid,
    failures: list[_Failure],
    failures_lock: threading.Lock,
    feed: _AggregatorFeed,
    crawler_factory: Callable[..., Crawler],
    allow_partial: bool,
    max_shards: int,
) -> None:
    """Two-level stealing dispatch: regions first, then subtree shards.

    Acquiring a region means presplitting it and publishing its shard
    plan; acquiring a shard means crawling one subtree.  Whichever
    worker lands a region's last shard performs the deterministic merge
    and files the result at the region's plan position.
    """
    while True:
        task = scheduler.acquire(home_session)
        if task is None:
            return
        if isinstance(task, ShardTask):
            try:
                result = crawl_shard(
                    sources[task.session],
                    task.region,
                    task.shard,
                    allow_partial=allow_partial,
                    listener=feed.listener(task),
                )
            except Exception as exc:  # noqa: BLE001 - re-raised by run()
                scheduler.fail(task)
                with failures_lock:
                    failures.append((task.key, exc))
                feed.failed(task)
                continue
            completion = scheduler.complete_shard(task, result)
        else:
            try:
                plan = presplit_region(
                    sources[task.session],
                    task.region,
                    crawler_factory=crawler_factory,
                    allow_partial=allow_partial,
                    max_shards=max_shards,
                    listener=feed.listener(task),
                )
            except Exception as exc:  # noqa: BLE001 - re-raised by run()
                scheduler.fail(task)
                with failures_lock:
                    failures.append((task.key, exc))
                feed.failed(task)
                continue
            completion = scheduler.publish(task, plan)
        if completion is not None:
            _finish_completion(
                scheduler, completion, grid, failures, failures_lock, feed
            )


def _steal_setup(plan: PartitionPlan, estimator, shard_subtrees):
    """(scheduler, worker loop, trailing args, pool upper bound).

    The one place that decides between one-level and two-level stealing
    for the thread-style backends (thread, async); keeping it here
    means the backends cannot drift apart in how they wire the loops.
    """
    if shard_subtrees is not None:
        scheduler = SubtreeScheduler(plan.bundles, estimator)
        # Subtree shards expose more parallelism than whole regions
        # alone, so cap the pool by the larger of the two.
        upper = max(1, scheduler.total_tasks, shard_subtrees)
        return scheduler, _sharded_steal_loop, (shard_subtrees,), upper
    scheduler = WorkStealingScheduler(plan.bundles, estimator)
    return scheduler, _steal_loop, (), max(1, scheduler.total_tasks)


class CrawlExecutor(abc.ABC):
    """Runs a partition plan's region grid and merges deterministically.

    Subclasses implement :meth:`_execute`, which must fill ``grid`` (or
    record failures) however it likes; :meth:`run` owns validation, the
    deterministic merge, and the drain-then-raise failure contract.

    Examples
    --------
    Pick a backend by registry name and crawl a plan; whatever backend
    runs, the merged result is byte-identical::

        from repro import TopKServer, make_executor, partition_space

        plan = partition_space(dataset.space, 4)
        sources = [TopKServer(dataset, k=64) for _ in range(4)]
        executor = make_executor("process", max_workers=4)
        merged = executor.run(
            sources, plan, rebalance=True, shard_subtrees=8
        )
        assert merged.complete
    """

    #: Registry name of the backend; subclasses override.
    name: str = "executor"

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(
                f"max_workers must be positive, got {max_workers}"
            )
        self._max_workers = max_workers

    def _workers(self, upper: int) -> int:
        """The effective worker count, capped at ``upper`` tasks."""
        workers = self._max_workers
        if workers is None:
            workers = default_workers(upper)
        return max(1, min(workers, upper))

    def run(
        self,
        sources: Sequence,
        plan: PartitionPlan,
        *,
        crawler_factory: Callable[..., Crawler] = Hybrid,
        allow_partial: bool = False,
        aggregator: ProgressAggregator | None = None,
        rebalance: bool = False,
        estimator: CostEstimator | None = None,
        shard_subtrees: int | None = None,
        shared_limits: bool = False,
    ) -> PartitionedResult:
        """Crawl every region of ``plan`` and merge deterministically.

        Parameters
        ----------
        sources:
            One query source per bundle, exactly as for
            :func:`~repro.crawl.partition.crawl_partitioned`.
        plan:
            The partition plan; the unit of scheduling is one region
            (or, with ``shard_subtrees``, one subtree shard of one).
        crawler_factory:
            Crawler class (or factory) applied to each region's
            :class:`~repro.crawl.partition.SubspaceView`.  The process
            backend additionally requires it to be picklable (a class
            or a :func:`functools.partial` over one -- not a lambda).
        allow_partial:
            Forwarded to each region crawl; a budget-interrupted region
            marks the merged result incomplete.
        aggregator:
            Optional live progress sink; sessions are marked ``done``
            and ``failed`` as they terminate.
        rebalance:
            Enable work stealing: idle workers take regions from the
            session with the largest estimated remaining cost.
        estimator:
            Optional :class:`~repro.crawl.rebalance.CostEstimator`
            seeding the stealing decisions (e.g. built with
            ``CostEstimator.from_stats`` from a previous crawl).
            Ignored unless ``rebalance`` is set.
        shard_subtrees:
            Split every region's crawl into up to this many subtree
            shards (:mod:`repro.crawl.sharding`).  Combined with
            ``rebalance``, idle workers then steal *subqueries of a
            live region* -- the only way to parallelise a plan whose
            cost is concentrated in one heavy region.  The merged
            result stays byte-identical to the unsharded sequential
            executor's.  ``None`` (default) disables sharding.
        shared_limits:
            Route server-side limits, clocks and stats through the
            shared-state control plane
            (:mod:`repro.crawl.coordinator`) so admission stays
            exactly-once across a process pool.  Only the process
            backend changes behaviour: the in-process backends already
            share those objects by reference, so the flag is an exact
            no-op there (accepted for CLI uniformity).

        Raises
        ------
        SchemaError
            If ``sources`` does not match ``plan.sessions``.
        QueryBudgetExhausted
            When a limit fires and ``allow_partial`` is ``False`` (the
            exception of the lowest failing plan position, after every
            worker drained).
        """
        _check_sources(sources, plan)
        if aggregator is not None and aggregator.sessions != plan.sessions:
            raise ValueError(
                f"aggregator tracks {aggregator.sessions} sessions but "
                f"the plan has {plan.sessions}"
            )
        if shard_subtrees is not None and shard_subtrees < 1:
            raise ValueError(
                f"shard_subtrees must be positive, got {shard_subtrees}"
            )
        feed = _AggregatorFeed(aggregator, plan)
        grid: list[list[CrawlResult | None]] = [
            [None] * len(bundle) for bundle in plan.bundles
        ]
        failures: list[_Failure] = []
        self._execute(
            sources,
            plan,
            grid,
            failures,
            feed,
            crawler_factory,
            allow_partial,
            rebalance,
            estimator,
            shard_subtrees,
            shared_limits,
        )
        if failures:
            failures.sort(key=lambda failure: failure[0])
            raise failures[0][1]
        return _merge_session_results(
            plan, tuple(tuple(session) for session in grid)
        )

    @abc.abstractmethod
    def _execute(
        self,
        sources: Sequence,
        plan: PartitionPlan,
        grid,
        failures: list[_Failure],
        feed: _AggregatorFeed,
        crawler_factory: Callable[..., Crawler],
        allow_partial: bool,
        rebalance: bool,
        estimator: CostEstimator | None,
        shard_subtrees: int | None,
        shared_limits: bool,
    ) -> None:
        """Fill ``grid`` with per-region results; record failures."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(max_workers={self._max_workers})"


class SequentialExecutor(CrawlExecutor):
    """The reference backend: plan order, in the calling thread.

    ``rebalance`` is accepted and ignored -- with a single worker there
    is nothing to steal, and the scheduler would hand out exactly the
    plan order anyway.  Stops at the first failure, like the original
    sequential :func:`~repro.crawl.partition.crawl_partitioned`.
    """

    name = "sequential"

    def _execute(
        self,
        sources,
        plan,
        grid,
        failures,
        feed,
        crawler_factory,
        allow_partial,
        rebalance,
        estimator,
        shard_subtrees,
        shared_limits,
    ):
        failures_lock = threading.Lock()
        for session in range(plan.sessions):
            _session_loop(
                session,
                sources,
                plan,
                grid,
                failures,
                failures_lock,
                feed,
                crawler_factory,
                allow_partial,
                max_shards=shard_subtrees,
            )
            if failures:
                # Stopping at the first failure abandons the remaining
                # sessions; mark them cancelled so aggregator snapshots
                # never show a never-started session as running.
                for later in range(session + 1, plan.sessions):
                    feed.cancelled(later)
                return


class ThreadExecutor(CrawlExecutor):
    """One worker thread per session; work stealing when rebalancing.

    Without ``rebalance`` this is exactly PR 1's executor: one task per
    session, each draining its bundle in plan order, on a pool of
    ``max_workers`` threads.  With ``rebalance`` the pool runs
    region-level workers over a
    :class:`~repro.crawl.rebalance.WorkStealingScheduler`; worker ``j``
    calls session ``j % sessions`` home.
    """

    name = "thread"

    def _execute(
        self,
        sources,
        plan,
        grid,
        failures,
        feed,
        crawler_factory,
        allow_partial,
        rebalance,
        estimator,
        shard_subtrees,
        shared_limits,
    ):
        failures_lock = threading.Lock()
        if not rebalance:
            workers = self._workers(plan.sessions)
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="crawl-session"
            ) as pool:
                tasks = [
                    pool.submit(
                        _session_loop,
                        session,
                        sources,
                        plan,
                        grid,
                        failures,
                        failures_lock,
                        feed,
                        crawler_factory,
                        allow_partial,
                        max_shards=shard_subtrees,
                    )
                    for session in range(plan.sessions)
                ]
                for task in tasks:
                    task.result()
            return
        scheduler, loop, extra, upper = _steal_setup(
            plan, estimator, shard_subtrees
        )
        workers = self._workers(upper)
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="crawl-steal"
        ) as pool:
            tasks = [
                pool.submit(
                    loop,
                    scheduler,
                    worker % plan.sessions,
                    sources,
                    grid,
                    failures,
                    failures_lock,
                    feed,
                    crawler_factory,
                    allow_partial,
                    *extra,
                )
                for worker in range(workers)
            ]
            for task in tasks:
                task.result()


# ----------------------------------------------------------------------
# Process backend: per-worker source copies, region tasks over pickle
# ----------------------------------------------------------------------
_WORKER_SOURCES: tuple | None = None
_WORKER_FACTORY: Callable[..., Crawler] | None = None


def _process_init(payload: bytes) -> None:
    """Pool initializer: unpickle the sources once per worker process."""
    global _WORKER_SOURCES, _WORKER_FACTORY
    _WORKER_SOURCES, _WORKER_FACTORY = pickle.loads(payload)


def _process_region(session: int, region, allow_partial: bool) -> CrawlResult:
    """Crawl one region in a pool worker, against the worker's copy."""
    assert _WORKER_SOURCES is not None and _WORKER_FACTORY is not None
    return _crawl_region(
        _WORKER_SOURCES[session],
        region,
        crawler_factory=_WORKER_FACTORY,
        allow_partial=allow_partial,
    )


def _process_session(
    session: int, bundle, allow_partial: bool
) -> tuple[CrawlResult, ...]:
    """Crawl a whole bundle in a pool worker, in plan order."""
    return tuple(
        _process_region(session, region, allow_partial) for region in bundle
    )


def _process_presplit(
    session: int, region, allow_partial: bool, max_shards: int
):
    """Presplit one region in a pool worker; the plan pickles back."""
    assert _WORKER_SOURCES is not None and _WORKER_FACTORY is not None
    return presplit_region(
        _WORKER_SOURCES[session],
        region,
        crawler_factory=_WORKER_FACTORY,
        allow_partial=allow_partial,
        max_shards=max_shards,
    )


def _process_shard(
    session: int, region, shard, allow_partial: bool
) -> CrawlResult:
    """Crawl one subtree shard in a pool worker.

    The shard may run in a different worker than its region's presplit
    did; both crawl deterministic *copies* of the session source, so
    the responses -- and therefore the results -- are identical (the
    per-worker copy semantics the process backend documents).
    """
    assert _WORKER_SOURCES is not None
    return crawl_shard(
        _WORKER_SOURCES[session], region, shard, allow_partial=allow_partial
    )


def _process_session_sharded(
    session: int, bundle, allow_partial: bool, max_shards: int
) -> tuple[CrawlResult, ...]:
    """Crawl a bundle in a pool worker, sharding each region locally."""
    assert _WORKER_SOURCES is not None and _WORKER_FACTORY is not None
    out = []
    for region in bundle:
        plan = presplit_region(
            _WORKER_SOURCES[session],
            region,
            crawler_factory=_WORKER_FACTORY,
            allow_partial=allow_partial,
            max_shards=max_shards,
        )
        results = [
            crawl_shard(
                _WORKER_SOURCES[session],
                region,
                shard,
                allow_partial=allow_partial,
            )
            for shard in plan.shards
        ]
        out.append(merge_region_shards(plan, results))
    return tuple(out)


#: Worker-batch wire form: completed (key, result) pairs + failures.
_WorkerBatch = tuple[list[tuple[tuple[int, int], CrawlResult]], list[_Failure]]


def _process_shared_steal_loop(
    scheduler, plane, home_session: int, allow_partial: bool
) -> _WorkerBatch:
    """Cross-process work stealing: one pool worker's pull loop.

    The scheduler lives in the coordinator process; ``acquire`` /
    ``complete`` go through its proxy, so this worker steals regions
    from *other workers' sessions* the moment its own run dry -- the
    same two-phase protocol as the thread backend's ``_steal_loop``,
    across process boundaries.  Completed results are batched into the
    return value (they would be dead weight in the coordinator);
    completions and failures are additionally pushed to the control
    plane as compact progress events for the parent's live aggregator
    feed.
    """
    assert _WORKER_SOURCES is not None and _WORKER_FACTORY is not None
    results: list[tuple[tuple[int, int], CrawlResult]] = []
    failures: list[_Failure] = []
    while True:
        task = scheduler.acquire(home_session)
        if task is None:
            return results, failures
        try:
            result = _crawl_region(
                _WORKER_SOURCES[task.session],
                task.region,
                crawler_factory=_WORKER_FACTORY,
                allow_partial=allow_partial,
            )
        except Exception as exc:  # noqa: BLE001 - re-raised by run()
            scheduler.fail(task)
            failures.append((task.key, exc))
            plane.push_event(("failed", task.session))
            continue
        scheduler.complete(task, result.cost)
        results.append((task.key, result))
        plane.push_event(
            ("region", task.session, task.index, result.cost, len(result.rows))
        )


def _process_shared_sharded_loop(
    scheduler,
    plane,
    home_session: int,
    allow_partial: bool,
    max_shards: int,
) -> _WorkerBatch:
    """Cross-process two-level stealing: regions first, then subtrees.

    The process-pool twin of ``_sharded_steal_loop`` over a
    coordinator-hosted :class:`SubtreeScheduler`: acquiring a region
    presplits it and publishes the shard plan through the proxy (so
    *other worker processes* immediately see its subtrees), acquiring a
    shard crawls one subtree, and whichever worker lands a region's
    last shard performs the deterministic merge locally and reports the
    exact merged cost back.  ``acquire`` blocks in the coordinator
    while presplits in flight may still publish shards.
    """
    assert _WORKER_SOURCES is not None and _WORKER_FACTORY is not None
    results: list[tuple[tuple[int, int], CrawlResult]] = []
    failures: list[_Failure] = []
    while True:
        task = scheduler.acquire(home_session)
        if task is None:
            return results, failures
        if isinstance(task, ShardTask):
            try:
                shard_result = crawl_shard(
                    _WORKER_SOURCES[task.session],
                    task.region,
                    task.shard,
                    allow_partial=allow_partial,
                )
            except Exception as exc:  # noqa: BLE001 - re-raised by run()
                scheduler.fail(task)
                failures.append((task.key, exc))
                plane.push_event(("failed", task.session))
                continue
            completion = scheduler.complete_shard(task, shard_result)
        else:
            try:
                shard_plan = presplit_region(
                    _WORKER_SOURCES[task.session],
                    task.region,
                    crawler_factory=_WORKER_FACTORY,
                    allow_partial=allow_partial,
                    max_shards=max_shards,
                )
            except Exception as exc:  # noqa: BLE001 - re-raised by run()
                scheduler.fail(task)
                failures.append((task.key, exc))
                plane.push_event(("failed", task.session))
                continue
            completion = scheduler.publish(task, shard_plan)
        if completion is None:
            continue
        done = completion.task
        try:
            merged = merge_region_shards(completion.plan, completion.results)
        except Exception as exc:  # noqa: BLE001 - re-raised by run()
            scheduler.fail_region(done.key)
            failures.append((done.key, exc))
            plane.push_event(("failed", done.session))
            continue
        scheduler.complete_region(done.key, merged.cost)
        results.append((done.key, merged))
        plane.push_event(
            ("region", done.session, done.index, merged.cost, len(merged.rows))
        )


class ProcessExecutor(CrawlExecutor):
    """Region crawls on a process pool, for CPU-bound simulated engines.

    Sources and the crawler factory are pickled once and shipped to
    each worker via the pool initializer (so per-task overhead is a few
    integers, not a dataset).  Requires the serving stack's picklable
    paths: servers, clients, limits and engines all drop their locks on
    pickle and rebuild them on load.  Cache listeners do not survive
    the trip, and each worker mutates its own *copy* of the sources --
    which is fine for limit-free simulation workloads, and wrong for
    limit-bearing ones (each copy admits independently).  For those,
    ``shared_limits=True`` moves the authoritative limits, clocks and
    server stats into a coordinator process
    (:mod:`repro.crawl.coordinator`): every worker admits through a
    thin proxy, admission is exactly-once fleet-wide, and the caller's
    original limit objects read the exact charged totals after the
    crawl (also after an exhaustion failure).

    Without ``rebalance``, one pool task per session preserves the
    thread backend's dispatch shape.  With ``rebalance``, the parent
    dispatches region tasks one at a time, always picking from the
    session with the largest estimated remaining cost, so the pool
    adaptively drains the slowest session first -- except under
    ``shared_limits``, where the scheduler itself is hosted in the
    coordinator and every worker runs its own cross-process steal loop
    (two-level when ``shard_subtrees`` is set).

    Progress reporting is completion-grained: the aggregator sees a
    session advance when a region (or, without rebalancing, a bundle)
    finishes, not per query.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None, *, mp_context=None):
        super().__init__(max_workers)
        self._mp_context = mp_context

    def _workers(self, upper: int) -> int:
        """Default to the core count, not the thread executor's 4x cap.

        Oversubscription pays off for latency-bound threads; worker
        *processes* exist for CPU-bound work, where anything beyond the
        cores adds only spawn time and a per-worker copy of the
        sources.
        """
        workers = self._max_workers
        if workers is None:
            workers = os.cpu_count() or 1
        return max(1, min(workers, upper))

    def _payload(self, sources, crawler_factory) -> bytes:
        try:
            return pickle.dumps((tuple(sources), crawler_factory))
        except Exception as exc:
            raise TypeError(
                "the process executor needs picklable sources and a "
                "picklable crawler_factory (a class or functools.partial, "
                f"not a lambda): {exc}"
            ) from exc

    def _execute(
        self,
        sources,
        plan,
        grid,
        failures,
        feed,
        crawler_factory,
        allow_partial,
        rebalance,
        estimator,
        shard_subtrees,
        shared_limits,
    ):
        if shared_limits:
            self._execute_shared(
                sources,
                plan,
                grid,
                failures,
                feed,
                crawler_factory,
                allow_partial,
                rebalance,
                estimator,
                shard_subtrees,
            )
            return
        payload = self._payload(sources, crawler_factory)
        workers = self._workers(
            self._pool_upper(plan, rebalance, shard_subtrees)
        )
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=self._mp_context,
            initializer=_process_init,
            initargs=(payload,),
        ) as pool:
            if rebalance and shard_subtrees is not None:
                self._drain_rebalanced_sharded(
                    pool,
                    workers,
                    plan,
                    grid,
                    failures,
                    feed,
                    allow_partial,
                    estimator,
                    shard_subtrees,
                )
            elif rebalance:
                self._drain_rebalanced(
                    pool,
                    workers,
                    plan,
                    grid,
                    failures,
                    feed,
                    allow_partial,
                    estimator,
                )
            else:
                self._drain_static(
                    pool,
                    plan,
                    grid,
                    failures,
                    feed,
                    allow_partial,
                    shard_subtrees,
                )

    @staticmethod
    def _pool_upper(plan, rebalance, shard_subtrees) -> int:
        """How many pool workers the plan can possibly keep busy."""
        if rebalance:
            upper = sum(len(bundle) for bundle in plan.bundles)
            if shard_subtrees is not None:
                upper = max(upper, shard_subtrees)
            return max(1, upper)
        return max(1, plan.sessions)

    def _execute_shared(
        self,
        sources,
        plan,
        grid,
        failures,
        feed,
        crawler_factory,
        allow_partial,
        rebalance,
        estimator,
        shard_subtrees,
    ):
        """The shared-limit mode: one authoritative copy of every limit.

        A :class:`~repro.crawl.coordinator.LimitCoordinator` owns the
        sources' limits, clocks and stats for the duration of the
        crawl; the pool receives rewired source clones whose admissions
        all charge the coordinator.  With ``rebalance`` the scheduler
        is hosted there too and workers run pull loops against it --
        cross-process stealing.  Whatever happens, the authoritative
        counters are written back into the caller's original objects,
        so ``budget.used`` is exact even after an exhaustion failure.
        """
        from repro.crawl.coordinator import LimitCoordinator

        with LimitCoordinator(mp_context=self._mp_context) as coordinator:
            try:
                shared_sources = coordinator.share_sources(sources)
                payload = self._payload(shared_sources, crawler_factory)
                workers = self._workers(
                    self._pool_upper(plan, rebalance, shard_subtrees)
                )
                with ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=self._mp_context,
                    initializer=_process_init,
                    initargs=(payload,),
                ) as pool:
                    if rebalance:
                        self._drain_shared_rebalanced(
                            pool,
                            workers,
                            plan,
                            grid,
                            failures,
                            feed,
                            allow_partial,
                            estimator,
                            shard_subtrees,
                            coordinator,
                        )
                    else:
                        self._drain_static(
                            pool,
                            plan,
                            grid,
                            failures,
                            feed,
                            allow_partial,
                            shard_subtrees,
                        )
            finally:
                coordinator.writeback()

    def _drain_shared_rebalanced(
        self,
        pool,
        workers,
        plan,
        grid,
        failures,
        feed,
        allow_partial,
        estimator,
        shard_subtrees,
        coordinator,
    ):
        """Worker-pull dispatch over a coordinator-hosted scheduler.

        Unlike the per-worker-copy rebalanced modes (where the parent
        is the only dispatcher), every pool worker runs its own steal
        loop against the shared scheduler, so stealing decisions and
        exact observed-cost feedback cross process boundaries without a
        parent round trip per task.  The parent meanwhile relays the
        workers' progress events into the aggregator feed and collects
        each worker's result batch as its loop drains.
        """
        scheduler = coordinator.make_scheduler(
            plan.bundles, estimator, subtree=shard_subtrees is not None
        )
        if shard_subtrees is not None:
            loop, extra = _process_shared_sharded_loop, (shard_subtrees,)
        else:
            loop, extra = _process_shared_steal_loop, ()
        pending = {
            pool.submit(
                loop,
                scheduler,
                coordinator.plane,
                worker % plan.sessions,
                allow_partial,
                *extra,
            )
            for worker in range(workers)
        }
        aborted = False
        while pending:
            done, pending = wait(
                pending, timeout=0.05, return_when=FIRST_COMPLETED
            )
            self._relay_events(coordinator, feed)
            for future in done:
                try:
                    batch, worker_failures = future.result()
                except Exception as exc:  # noqa: BLE001 - re-raised by run()
                    # A worker loop died outside its per-task handling
                    # (e.g. the process was killed).  Its in-flight
                    # task would block the drain forever; abort so the
                    # surviving workers run dry, and rank this failure
                    # after every real region failure.
                    scheduler.abort()
                    aborted = True
                    failures.append(((plan.sessions, 0), exc))
                    continue
                for key, result in batch:
                    grid[key[0]][key[1]] = result
                failures.extend(worker_failures)
        self._relay_events(coordinator, feed)
        if aborted:
            for session in range(plan.sessions):
                feed.cancelled(session)
        if estimator is not None:
            for key, cost in scheduler.completed_costs().items():
                estimator.record(key, cost)

    @staticmethod
    def _relay_events(coordinator, feed):
        """Translate worker progress events into aggregator updates."""
        for event in coordinator.plane.pop_events():
            if event[0] == "region":
                _, session, index, cost, tuples = event
                feed.region_counts(session, index, cost, tuples)
            elif event[0] == "failed":
                feed.failed_session(event[1])

    def _drain_static(
        self, pool, plan, grid, failures, feed, allow_partial, shard_subtrees
    ):
        if shard_subtrees is not None:
            tasks: dict[Future, int] = {
                pool.submit(
                    _process_session_sharded,
                    session,
                    plan.bundles[session],
                    allow_partial,
                    shard_subtrees,
                ): session
                for session in range(plan.sessions)
            }
        else:
            tasks = {
                pool.submit(
                    _process_session,
                    session,
                    plan.bundles[session],
                    allow_partial,
                ): session
                for session in range(plan.sessions)
            }
        for future, session in tasks.items():
            bundle = plan.bundles[session]
            try:
                session_results = future.result()
            except Exception as exc:  # noqa: BLE001 - re-raised by run()
                failures.append(((session, 0), exc))
                # An empty bundle has no region to attribute a pool
                # failure to (its session is already marked done).
                if bundle:
                    feed.failed(RegionTask(session, 0, bundle[0]))
                continue
            for index, result in enumerate(session_results):
                task = RegionTask(session, index, bundle[index])
                grid[session][index] = result
                feed.finished(task, result)

    def _drain_rebalanced(
        self,
        pool,
        workers,
        plan,
        grid,
        failures,
        feed,
        allow_partial,
        estimator,
    ):
        scheduler = WorkStealingScheduler(plan.bundles, estimator)
        in_flight: dict[Future, RegionTask] = {}

        def submit_next() -> bool:
            task = scheduler.acquire()
            if task is None:
                return False
            future = pool.submit(
                _process_region, task.session, task.region, allow_partial
            )
            in_flight[future] = task
            return True

        for _ in range(workers):
            if not submit_next():
                break
        while in_flight:
            done, _ = wait(set(in_flight), return_when=FIRST_COMPLETED)
            for future in done:
                task = in_flight.pop(future)
                try:
                    result = future.result()
                except Exception as exc:  # noqa: BLE001 - re-raised by run()
                    scheduler.fail(task)
                    failures.append((task.key, exc))
                    feed.failed(task)
                else:
                    scheduler.complete(task, result.cost)
                    grid[task.session][task.index] = result
                    feed.finished(task, result)
                submit_next()

    def _drain_rebalanced_sharded(
        self,
        pool,
        workers,
        plan,
        grid,
        failures,
        feed,
        allow_partial,
        estimator,
        max_shards,
    ):
        """Parent-side two-level dispatch over the process pool.

        The parent polls the :class:`SubtreeScheduler` non-blockingly
        (it is the only dispatcher, so nothing can publish behind its
        back while it holds no futures), ships presplits and shard
        crawls to pool workers, and performs the deterministic merges
        itself as regions drain.
        """
        scheduler = SubtreeScheduler(plan.bundles, estimator)
        failures_lock = threading.Lock()
        in_flight: dict[Future, RegionTask | ShardTask] = {}

        def submit_next() -> bool:
            task = scheduler.acquire(block=False)
            if task is None:
                return False
            if isinstance(task, ShardTask):
                future = pool.submit(
                    _process_shard,
                    task.session,
                    task.region,
                    task.shard,
                    allow_partial,
                )
            else:
                future = pool.submit(
                    _process_presplit,
                    task.session,
                    task.region,
                    allow_partial,
                    max_shards,
                )
            in_flight[future] = task
            return True

        for _ in range(workers):
            if not submit_next():
                break
        while in_flight:
            done, _ = wait(set(in_flight), return_when=FIRST_COMPLETED)
            for future in done:
                task = in_flight.pop(future)
                try:
                    payload = future.result()
                except Exception as exc:  # noqa: BLE001 - re-raised by run()
                    scheduler.fail(task)
                    failures.append((task.key, exc))
                    feed.failed(task)
                else:
                    if isinstance(task, ShardTask):
                        completion = scheduler.complete_shard(task, payload)
                    else:
                        completion = scheduler.publish(task, payload)
                    if completion is not None:
                        _finish_completion(
                            scheduler,
                            completion,
                            grid,
                            failures,
                            failures_lock,
                            feed,
                        )
                while len(in_flight) < workers and submit_next():
                    pass


# ----------------------------------------------------------------------
# Async backend: event-loop coordination, awaitable sources bridged
# ----------------------------------------------------------------------
class _LoopBridge:
    """Sync facade over an awaitable source, for crawler worker threads.

    ``run`` schedules the source's ``arun`` coroutine on the executor's
    event loop and blocks *the calling worker thread* (never the loop)
    until the response arrives -- so many sessions' waits multiplex on
    one loop while the unchanged synchronous crawlers drive them.
    """

    def __init__(self, source, loop: asyncio.AbstractEventLoop):
        self._source = source
        self._loop = loop

    @property
    def space(self):
        """The underlying data space; the bridge is transparent."""
        return self._source.space

    @property
    def k(self) -> int:
        """The underlying retrieval limit."""
        return self._source.k

    def run(self, query):
        """Await ``arun(query)`` on the loop from a worker thread."""
        future = asyncio.run_coroutine_threadsafe(
            self._source.arun(query), self._loop
        )
        return future.result()

    def __repr__(self) -> str:
        return f"_LoopBridge({self._source!r})"


def _bridge_source(source, loop: asyncio.AbstractEventLoop):
    """Wrap awaitable sources (those with an ``arun`` coroutine)."""
    arun = getattr(source, "arun", None)
    if arun is None or not asyncio.iscoroutinefunction(arun):
        return source
    return _LoopBridge(source, loop)


class AsyncExecutor(CrawlExecutor):
    """Asyncio-coordinated sessions over (optionally) awaitable sources.

    Each session's crawl runs on a worker thread (the crawlers are
    synchronous), but a source exposing an ``arun(query)`` coroutine --
    :class:`~repro.server.latency.AsyncLatencySource`, an
    :class:`~repro.server.client.AwaitableClient` over a web adapter --
    is awaited on the executor's event loop, so simulated round trips
    and future async I/O multiplex there instead of pinning threads in
    ``time.sleep``.  Purely synchronous sources work unchanged.

    Must be called from a thread with no running event loop (it owns
    one for the duration of the crawl).
    """

    name = "async"

    def _execute(
        self,
        sources,
        plan,
        grid,
        failures,
        feed,
        crawler_factory,
        allow_partial,
        rebalance,
        estimator,
        shard_subtrees,
        shared_limits,
    ):
        asyncio.run(
            self._amain(
                sources,
                plan,
                grid,
                failures,
                feed,
                crawler_factory,
                allow_partial,
                rebalance,
                estimator,
                shard_subtrees,
            )
        )

    async def _amain(
        self,
        sources,
        plan,
        grid,
        failures,
        feed,
        crawler_factory,
        allow_partial,
        rebalance,
        estimator,
        shard_subtrees,
    ):
        loop = asyncio.get_running_loop()
        bridged = [_bridge_source(source, loop) for source in sources]
        failures_lock = threading.Lock()
        # Session loops run on a dedicated pool, NEVER asyncio's shared
        # default executor: an awaitable source's ``arun`` may itself
        # need a default-executor thread (AwaitableClient does), and
        # session loops blocking in _LoopBridge.run while occupying
        # every default-pool slot would deadlock the crawl.
        if rebalance:
            scheduler, steal, extra, upper = _steal_setup(
                plan, estimator, shard_subtrees
            )
            workers = self._workers(upper)
            jobs = [
                (
                    steal,
                    scheduler,
                    worker % plan.sessions,
                    bridged,
                    grid,
                    failures,
                    failures_lock,
                    feed,
                    crawler_factory,
                    allow_partial,
                    *extra,
                )
                for worker in range(workers)
            ]
        else:
            workers = self._workers(plan.sessions)
            jobs = [
                (
                    _session_loop,
                    session,
                    bridged,
                    plan,
                    grid,
                    failures,
                    failures_lock,
                    feed,
                    crawler_factory,
                    allow_partial,
                    shard_subtrees,
                )
                for session in range(plan.sessions)
            ]
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="crawl-async"
        ) as pool:
            await asyncio.gather(
                *(
                    loop.run_in_executor(pool, functools.partial(*job))
                    for job in jobs
                )
            )


#: Backend registry, keyed by the CLI's ``--executor`` names.
EXECUTORS: dict[str, type[CrawlExecutor]] = {
    "sequential": SequentialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
    "async": AsyncExecutor,
}


def make_executor(
    name: str, *, max_workers: int | None = None
) -> CrawlExecutor:
    """Build a backend by registry name (see :data:`EXECUTORS`)."""
    try:
        cls = EXECUTORS[name]
    except KeyError:
        known = ", ".join(sorted(EXECUTORS))
        raise ValueError(
            f"unknown executor {name!r}; expected one of: {known}"
        ) from None
    return cls(max_workers=max_workers)
