"""Partitioned crawling: split the data space across crawl sessions.

The paper's cost metric is motivated by per-IP query quotas ("most
systems have a control on how many queries can be submitted by the same
IP address within a period of time").  A deployment that owns several
network identities therefore wants to *partition* the data space into
disjoint regions, crawl each region through a separate session (its own
connection, budget and rate limit), and merge the results.  This module
provides the three pieces:

* :func:`partition_space` -- a :class:`PartitionPlan`: pairwise
  disjoint region queries covering the whole space, bundled into one
  work list per session;
* :class:`SubspaceView` -- a :class:`~repro.server.interface.QueryInterface`
  that confines any crawler to one region by intersecting every query
  it issues with the region (contradictory queries are answered empty
  locally, at zero cost);
* :func:`crawl_partitioned` -- run one crawler per session over its
  bundle (sessions executed one after another in this process) and
  merge everything into a single result.

For true wall-clock concurrency, :mod:`repro.crawl.parallel` executes
the same plan with one worker thread per session
(:func:`~repro.crawl.parallel.crawl_partitioned_parallel`, also exposed
as ``python -m repro.crawl ... --workers N``).  Both executors honour
the same **determinism contract**: the merged rows are ordered by
(session index, region index, extraction order), per-region results and
the summed cost are identical between the two, and the merged progress
curve is the canonical :func:`~repro.crawl.base.merge_progress`
interleaving of the per-session curves -- never a function of thread
scheduling.

Correctness is compositional: regions are disjoint and covering, each
region's crawl extracts exactly ``region ∩ D`` (the per-crawler
guarantee), so the merged bag is exactly ``D``.  The merged *cost* is
the sum of per-session costs -- typically a little above a single
session's cost (each session re-pays shared-prefix queries), which is
the price of parallelism and is measured in the tests.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.crawl.base import (
    CrawlResult,
    Crawler,
    ProgressPoint,
    concat_progress,
    merge_progress,
)
from repro.crawl.hybrid import Hybrid
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError, UnboundedDomainError
from repro.query.query import Query
from repro.server.response import QueryResponse, Row

__all__ = [
    "DEFAULT_MAX_REGIONS",
    "PartitionPlan",
    "partition_space",
    "SubspaceView",
    "PartitionedResult",
    "crawl_partitioned",
]

#: Default ceiling on the number of regions a plan may hold.  Large
#: enough that work stealing always has plenty to move around, small
#: enough that an NSF-like schema (a categorical attribute with tens of
#: thousands of values) no longer explodes into one single-point region
#: per value.
DEFAULT_MAX_REGIONS = 512


@dataclass(frozen=True)
class PartitionPlan:
    """Disjoint region queries, bundled into per-session work lists.

    ``bundles[i]`` is the tuple of region queries session ``i`` crawls.
    Every region is a restriction of the full space on one attribute,
    and across all bundles the regions are pairwise disjoint and cover
    the space.

    Examples
    --------
    >>> from repro import DataSpace, partition_space
    >>> space = DataSpace.mixed([("make", 5)], ["price"])
    >>> plan = partition_space(space, 2)
    >>> plan.sessions, len(plan.regions)
    (2, 5)
    >>> [len(bundle) for bundle in plan.bundles]
    [3, 2]
    >>> plan.covers((3, 17_000))  # every point is in exactly one region
    1
    """

    space: DataSpace
    attribute: int
    bundles: tuple[tuple[Query, ...], ...]

    @property
    def sessions(self) -> int:
        """Number of work lists (sessions) in the plan."""
        return len(self.bundles)

    @property
    def regions(self) -> tuple[Query, ...]:
        """All region queries, flattened."""
        return tuple(q for bundle in self.bundles for q in bundle)

    def covers(self, point: Sequence[int]) -> int:
        """How many regions contain ``point`` (1 iff the plan is valid)."""
        return sum(1 for region in self.regions if region.matches(point))


def partition_space(
    space: DataSpace,
    sessions: int,
    *,
    attribute: int | None = None,
    max_regions: int | None = None,
) -> PartitionPlan:
    """Partition the space on one attribute into ``sessions`` bundles.

    Parameters
    ----------
    space:
        The data space to partition.
    sessions:
        Number of crawl sessions (work lists) to produce.
    attribute:
        The attribute to partition on.  When omitted, the planner is
        *cost-aware* (see Notes); an explicit attribute is always
        honoured, even when it busts ``max_regions``.
    max_regions:
        Ceiling on the region count the default attribute choice may
        produce (``None`` means :data:`DEFAULT_MAX_REGIONS`).  A
        categorical attribute necessarily yields one equality region
        per domain value -- the top-k interface has no way to query a
        *set* of categorical values -- so the cap steers the planner
        away from huge domains rather than merging their values.

    Notes
    -----
    The default attribute is chosen by estimated scheduling cost, in
    this order:

    1. the categorical attribute with the **largest domain that still
       fits** (``sessions <= domain <= max_regions``) -- many small
       disjoint regions balance best and give work stealing the most
       to move around;
    2. otherwise the first bounded numeric attribute wide enough for
       ``sessions`` intervals -- a numeric split always yields exactly
       ``sessions`` regions, so it can never explode;
    3. otherwise the categorical attribute with the **smallest** domain
       still holding ``sessions`` values -- region count above the cap,
       but the least oversized choice available.

    Region shapes:

    * a categorical attribute yields one region per domain value
      (``A_i = c``), dealt round-robin into the bundles -- ``sessions``
      may not exceed the domain size;
    * a numeric attribute yields one contiguous interval per session,
      the two outermost extended to infinity so coverage never depends
      on the advisory bounds.

    Raises
    ------
    SchemaError
        For invalid ``sessions``/``max_regions`` or an attribute that
        cannot be partitioned.
    UnboundedDomainError
        If a numeric partition attribute has no finite bounds to place
        the interior split points.
    """
    if sessions < 1:
        raise SchemaError(f"sessions must be positive, got {sessions}")
    if max_regions is None:
        max_regions = DEFAULT_MAX_REGIONS
    if max_regions < sessions:
        raise SchemaError(
            f"max_regions={max_regions} cannot hold {sessions} sessions"
        )
    if attribute is None:
        attribute = _default_partition_attribute(space, sessions, max_regions)
    attr = space[attribute]
    root = Query.full(space)

    if attr.is_categorical:
        assert attr.domain_size is not None
        if sessions > attr.domain_size:
            raise SchemaError(
                f"cannot split {attr.domain_size} values of {attr.name!r} "
                f"across {sessions} sessions"
            )
        bundles: list[list[Query]] = [[] for _ in range(sessions)]
        for value in range(1, attr.domain_size + 1):
            bundles[(value - 1) % sessions].append(
                root.with_value(attribute, value)
            )
        return PartitionPlan(
            space, attribute, tuple(tuple(b) for b in bundles)
        )

    if attr.lo is None or attr.hi is None:
        raise UnboundedDomainError(
            f"numeric attribute {attr.name!r} needs finite bounds to be "
            "partitioned"
        )
    width = attr.hi - attr.lo + 1
    if sessions > width:
        raise SchemaError(
            f"cannot split {width} values of {attr.name!r} across "
            f"{sessions} sessions"
        )
    edges = [attr.lo + (width * i) // sessions for i in range(1, sessions)]
    intervals: list[tuple[int | None, int | None]] = []
    lower: int | None = None
    for edge in edges:
        intervals.append((lower, edge - 1))
        lower = edge
    intervals.append((lower, None))
    regions = tuple(root.with_range(attribute, lo, hi) for lo, hi in intervals)
    return PartitionPlan(space, attribute, tuple((r,) for r in regions))


def _default_partition_attribute(
    space: DataSpace, sessions: int, max_regions: int
) -> int:
    """Cost-aware default choice; heuristic documented on
    :func:`partition_space`."""
    fitting: int | None = None
    fitting_size = 0
    oversized: int | None = None
    oversized_size = 0
    for i in range(space.cat):
        size = space[i].domain_size
        assert size is not None
        if size <= 1 or size < sessions:
            continue
        if size <= max_regions:
            if size > fitting_size:
                fitting, fitting_size = i, size
        elif oversized is None or size < oversized_size:
            oversized, oversized_size = i, size
    if fitting is not None:
        return fitting
    for i in range(space.cat, space.dimensionality):
        attr = space[i]
        if not attr.is_bounded:
            continue
        if attr.hi - attr.lo + 1 >= sessions:
            return i
    if oversized is not None:
        return oversized
    raise SchemaError(
        "no partitionable attribute: need a categorical domain larger "
        "than 1 or a bounded numeric attribute wide enough for "
        f"{sessions} sessions"
    )


class SubspaceView:
    """Confine a query source to one region of its data space.

    Every query is intersected with the region before being forwarded;
    a contradictory query (empty intersection) is answered locally with
    an empty resolved response at zero cost.  A crawler pointed at the
    view therefore extracts exactly ``region ∩ D`` while believing it
    crawled the full space.
    """

    def __init__(self, source, region: Query):
        if region.space != source.space:
            raise SchemaError("region was built against a different space")
        self._source = source
        self._region = region

    @property
    def space(self) -> DataSpace:
        """The (full) data space; the restriction is transparent."""
        return self._source.space

    @property
    def k(self) -> int:
        """The underlying retrieval limit."""
        return self._source.k

    @property
    def region(self) -> Query:
        """The confining region."""
        return self._region

    def run(self, query: Query) -> QueryResponse:
        """Answer ``query ∧ region``, locally when contradictory."""
        merged = query.intersect(self._region)
        if merged is None:
            return QueryResponse((), overflow=False)
        return self._source.run(merged)

    def batch_context(self):
        """Delegate the batch seam, so region crawls share engine work.

        A view is transparent to batching exactly as it is to queries:
        when the wrapped source exposes
        :meth:`~repro.server.server.TopKServer.batch_context`, a
        battery against the view evaluates through the source's shared
        context; otherwise the epoch is a no-op (sources without the
        seam simply answer query by query).
        """
        inner = getattr(self._source, "batch_context", None)
        if inner is None:
            return nullcontext()
        return inner()

    def __repr__(self) -> str:
        return f"SubspaceView({self._region})"


@dataclass
class PartitionedResult:
    """Merged outcome of a partitioned crawl.

    ``results[i]`` lists session ``i``'s per-region crawl results in
    work-list order; the flattened bag and summed cost describe the
    whole operation.  ``progress`` is the deterministic
    :func:`~repro.crawl.base.merge_progress` interleaving of the
    per-session curves (identical whether the sessions ran sequentially
    or on a thread pool).
    """

    plan: PartitionPlan
    results: tuple[tuple[CrawlResult, ...], ...]
    rows: list[Row]
    cost: int
    complete: bool
    progress: list[ProgressPoint] = field(default_factory=list)

    @property
    def tuples_extracted(self) -> int:
        """Size of the merged bag."""
        return len(self.rows)

    def session_costs(self) -> list[int]:
        """Per-session query totals (each session = one identity/quota)."""
        return [sum(r.cost for r in session) for session in self.results]

    def session_progress(self, session: int) -> list[ProgressPoint]:
        """Session ``session``'s progress curve across its whole bundle."""
        return concat_progress([r.progress for r in self.results[session]])

    def as_crawl_result(self, algorithm: str = "partitioned") -> CrawlResult:
        """The merged operation flattened into one :class:`CrawlResult`.

        Lets partition-agnostic tooling (verification, progress
        reporting, CSV export, the CLI) consume a partitioned crawl
        through the single-crawl interface.
        """
        phase_costs: dict[str, int] = {}
        for session in self.results:
            for result in session:
                for phase, cost in result.phase_costs.items():
                    phase_costs[phase] = phase_costs.get(phase, 0) + cost
        return CrawlResult(
            algorithm=algorithm,
            space=self.plan.space,
            rows=list(self.rows),
            cost=self.cost,
            complete=self.complete,
            progress=list(self.progress),
            phase_costs=phase_costs,
        )

    def __repr__(self) -> str:
        state = "complete" if self.complete else "partial"
        return (
            f"PartitionedResult({self.plan.sessions} sessions, "
            f"{len(self.rows)} tuples, {self.cost} queries, {state})"
        )


def crawl_partitioned(
    sources: Sequence,
    plan: PartitionPlan,
    *,
    crawler_factory: Callable[..., Crawler] = Hybrid,
    allow_partial: bool = False,
) -> PartitionedResult:
    """Crawl every region of ``plan``, one source per session.

    Parameters
    ----------
    sources:
        One query source per bundle (e.g. servers constructed with
        separate :class:`~repro.server.limits.DailyRateLimit` objects,
        modelling distinct IPs).  Must match ``plan.sessions``.
    crawler_factory:
        Crawler class (or factory) applied to each region's
        :class:`SubspaceView`; defaults to :class:`Hybrid`.
    allow_partial:
        Forwarded to each region crawl; a budget-interrupted region
        marks the merged result incomplete.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import (
    ...     DataSpace, Dataset, TopKServer,
    ...     crawl_partitioned, partition_space,
    ... )
    >>> space = DataSpace.mixed([("make", 4)], ["price"])
    >>> rng = np.random.default_rng(0)
    >>> rows = np.column_stack(
    ...     [rng.integers(1, 5, 100), rng.integers(0, 1000, 100)]
    ... )
    >>> dataset = Dataset(space, rows.astype(np.int64))
    >>> plan = partition_space(space, 2)
    >>> sources = [TopKServer(dataset, k=16) for _ in range(2)]
    >>> merged = crawl_partitioned(sources, plan)
    >>> merged.complete
    True
    >>> sorted(merged.rows) == sorted(dataset.iter_rows())
    True
    """
    from repro.crawl.executors import SequentialExecutor
    from repro.crawl.spec import CrawlSpec

    spec = CrawlSpec(
        crawler_factory=crawler_factory, allow_partial=allow_partial
    )
    return SequentialExecutor().run(sources, plan, spec)


# ----------------------------------------------------------------------
# Shared machinery between the executors (see repro.crawl.executors)
# ----------------------------------------------------------------------
def _check_sources(sources: Sequence, plan: PartitionPlan) -> None:
    if len(sources) != plan.sessions:
        raise SchemaError(
            f"plan has {plan.sessions} sessions but {len(sources)} "
            "sources were supplied"
        )


def _crawl_region(
    source,
    region: Query,
    *,
    crawler_factory: Callable[..., Crawler],
    allow_partial: bool,
    listener: Callable[[ProgressPoint], None] | None = None,
) -> CrawlResult:
    """Crawl one region of one session: the executors' unit of work.

    A fresh crawler (and therefore a fresh response cache) is built per
    region, so the region's :class:`~repro.crawl.base.CrawlResult` is a
    pure function of (source, region) -- independent of which worker
    crawls it, and of when.  That independence is what lets the
    work-stealing executors move regions between workers while keeping
    the merged result byte-identical to the sequential executor's.
    """
    crawler = crawler_factory(SubspaceView(source, region))
    if listener is not None:
        crawler.add_progress_listener(listener)
    return crawler.crawl(allow_partial=allow_partial)


def _merge_session_results(
    plan: PartitionPlan,
    session_results: Sequence[tuple[CrawlResult, ...]],
) -> PartitionedResult:
    """Deterministic merge: rows by (session, region) index, costs summed,
    progress curves interleaved canonically."""
    all_rows: list[Row] = [
        row
        for session in session_results
        for result in session
        for row in result.rows
    ]
    cost = sum(r.cost for session in session_results for r in session)
    complete = all(r.complete for session in session_results for r in session)
    progress = merge_progress(
        [
            concat_progress([r.progress for r in session])
            for session in session_results
        ]
    )
    return PartitionedResult(
        plan=plan,
        results=tuple(session_results),
        rows=all_rows,
        cost=cost,
        complete=complete,
        progress=progress,
    )
