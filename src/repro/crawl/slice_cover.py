"""``slice-cover`` and ``lazy-slice-cover`` (paper Section 3.2).

A *slice query* pins exactly one categorical attribute, ``Ai = c``, and
wildcards everything else; there are only ``sum_i Ui`` of them.  The
algorithm:

1. **Slice table.**  Eager mode runs every slice query up front and
   remembers each response (a resolved slice's full result, or just an
   overflow bit).  Lazy mode -- the paper's practical winner -- issues a
   slice query the first time its answer is needed.  Both share the
   response cache of :class:`~repro.server.client.CachingClient`, which
   *is* the lookup table.
2. **Extended DFS.**  Walk the data space tree, but before descending
   into a child ``v`` (which refines its parent with ``A(l+1) = c``),
   consult the slice ``A(l+1) = c``: if that slice *resolved*, the
   child's entire subtree is answered locally by filtering the slice's
   rows -- no query issued, no descent.  Only children whose slice
   overflowed are visited, and Lemma 4 bounds their number by
   ``(n/k) * min(Ui, n/k)`` per level.

Total cost (Lemma 4): ``U1`` when ``d = 1``; otherwise at most
``sum Ui + (n/k) * sum min(Ui, n/k)`` -- optimal by Theorem 4.

The extended-DFS core is shared with the ``hybrid`` algorithm (Section
5), which replaces the categorical leaf handler with a rank-shrink
sub-crawl over the numeric suffix.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.crawl.base import Crawler
from repro.dataspace.space import SpaceKind
from repro.exceptions import InfeasibleCrawlError, SchemaError
from repro.query.query import Query, slice_query
from repro.server.response import QueryResponse

__all__ = ["SliceCover", "LazySliceCover"]

#: Handler invoked on a categorical-leaf query (all ``cat`` attributes
#: pinned) whose slice overflowed; must extract that subspace in full.
LeafHandler = Callable[[Query], None]


def preprocess_slice_table(crawler: Crawler) -> None:
    """Eagerly run every slice query (slice-cover's first phase).

    Each attribute's slices are siblings by construction, so they go
    out as one battery -- the identical queries in the identical order
    as the plain loop, sharing one engine context per attribute.
    """
    crawler.client.begin_phase("slice-table")
    try:
        for index in range(crawler.space.cat):
            attr = crawler.space[index]
            assert attr.domain_size is not None
            crawler._run_battery(
                [
                    slice_query(crawler.space, index, value)
                    for value in range(1, attr.domain_size + 1)
                ]
            )
    finally:
        crawler.client.end_phase()


def slice_response(
    crawler: Crawler, index: int, value: int, *, lazy: bool
) -> QueryResponse:
    """The slice table entry for ``A_index = value``.

    Eager mode requires the entry to exist (preprocessing ran); lazy
    mode issues the slice query on first use -- "there is no harm to run
    the query at the first time such a need arises".
    """
    query = slice_query(crawler.space, index, value)
    response = crawler.client.peek(query)
    if response is None:
        if not lazy:
            raise SchemaError(
                "slice table consulted before preprocessing; "
                "run preprocess_slice_table first"
            )
        response = crawler._run_query(query)
    return response


def categorical_point_handler(crawler: Crawler) -> LeafHandler:
    """Leaf handler for purely categorical spaces: issue the point query.

    A point of the data space can hold at most ``k`` tuples in any
    solvable instance, so an overflow here proves infeasibility.
    """

    def handle(leaf_query: Query) -> None:
        response = crawler._run_query(leaf_query)
        if response.overflow:
            raise InfeasibleCrawlError(
                f"point query {leaf_query} overflowed: more than "
                f"k={crawler.k} duplicates at one point"
            )
        crawler._confirm(response.rows)

    return handle


def extended_dfs(
    crawler: Crawler,
    node_query: Query,
    level: int,
    *,
    lazy: bool,
    leaf_handler: LeafHandler,
) -> None:
    """Process the children of an (assumed overflowing) tree node.

    ``level`` is the node's depth: attributes ``A1 .. A_level`` are
    pinned on ``node_query``.  For each child (refining ``A(level+1)``):

    * slice resolved  -> answer locally by filtering the slice's rows;
    * slice overflowed -> visit the child: hand categorical leaves to
      ``leaf_handler``, issue inner nodes' queries and recurse on
      overflow.
    """
    cat = crawler.space.cat
    attr = crawler.space[level]
    assert attr.domain_size is not None
    if lazy:
        # Lazy mode consults the slice of *every* child below, so
        # prefetching the uncached ones as one sibling battery issues
        # exactly the queries the loop would -- grouped up front,
        # sharing one engine context, instead of interleaved with the
        # descents.
        uncached = []
        for value in range(1, attr.domain_size + 1):
            slice_q = slice_query(crawler.space, level, value)
            if crawler.client.peek(slice_q) is None:
                uncached.append(slice_q)
        crawler._run_battery(uncached)
    for value in range(1, attr.domain_size + 1):
        child_query = node_query.with_value(level, value)
        table_entry = slice_response(crawler, level, value, lazy=lazy)
        if table_entry.resolved:
            crawler._confirm(
                row for row in table_entry.rows if child_query.matches(row)
            )
            continue
        if level + 1 == cat:
            leaf_handler(child_query)
            continue
        child_response = crawler._run_query(child_query)
        if child_response.resolved:
            crawler._confirm(child_response.rows)
        else:
            extended_dfs(
                crawler,
                child_query,
                level + 1,
                lazy=lazy,
                leaf_handler=leaf_handler,
            )


class SliceCover(Crawler):
    """Eager slice-cover: full slice table first, then extended DFS.

    The all-wildcard root query is never issued: once the slice table is
    known, the root's processing needs only the table (the paper's
    Section 3.2 example issues no query at the root either).
    """

    name = "slice-cover"

    def __init__(
        self,
        source,
        *,
        max_queries: int | None = None,
        batteries: bool = True,
    ):
        super().__init__(source, max_queries=max_queries, batteries=batteries)
        if self.space.kind is not SpaceKind.CATEGORICAL:
            raise SchemaError(
                "slice-cover handles purely categorical spaces; use Hybrid "
                f"for {self.space.kind.value} spaces"
            )

    def _execute(self) -> None:
        preprocess_slice_table(self)
        self.client.begin_phase("traversal")
        try:
            extended_dfs(
                self,
                Query.full(self.space),
                0,
                lazy=False,
                leaf_handler=categorical_point_handler(self),
            )
        finally:
            self.client.end_phase()


class LazySliceCover(Crawler):
    """Lazy slice-cover: slices are fetched on first use (Section 3.2).

    Shares slice-cover's worst-case bound, but on practical data skips
    most of the slice table -- the paper's clear experimental winner
    (Figure 11).  Faithful to extended-DFS, the root query is issued
    (nothing is known before it).
    """

    name = "lazy-slice-cover"

    def __init__(
        self,
        source,
        *,
        max_queries: int | None = None,
        batteries: bool = True,
    ):
        super().__init__(source, max_queries=max_queries, batteries=batteries)
        if self.space.kind is not SpaceKind.CATEGORICAL:
            raise SchemaError(
                "lazy-slice-cover handles purely categorical spaces; use "
                f"Hybrid for {self.space.kind.value} spaces"
            )

    def _execute(self) -> None:
        root = Query.full(self.space)
        response = self._run_query(root)
        if response.resolved:
            self._confirm(response.rows)
            return
        extended_dfs(
            self,
            root,
            0,
            lazy=True,
            leaf_handler=categorical_point_handler(self),
        )
