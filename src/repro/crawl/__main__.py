"""CLI: simulate a full crawl of a CSV-backed hidden database.

Loads a dataset (see :mod:`repro.datasets.io` for the schema-carrying
CSV format), hides it behind a top-``k`` server, crawls it with a chosen
algorithm, verifies the extracted bag, and optionally writes it back
out::

    python -m repro.crawl data.csv --k 256
    python -m repro.crawl data.csv --k 64 --algorithm lazy-slice-cover \
        --output extracted.csv --progress
    python -m repro.crawl data.csv --k 256 --workers 4
    python -m repro.crawl data.csv --k 256 --workers 4 \
        --executor process --rebalance
    python -m repro.crawl data.csv --k 256 --workers 4 \
        --rebalance --shard-subtrees 8
    python -m repro.crawl data.csv --k 256 --workers 4 \
        --executor process --shared-limits --budget 5000
    python -m repro.crawl data.csv --k 256 --workers 4 --progress-live
    python -m repro.crawl data.csv --k 256 --workers 4 \
        --checkpoint crawl.ckpt
    python -m repro.crawl data.csv --k 256 --workers 4 \
        --resume crawl.ckpt

``--workers N`` partitions the data space into ``N`` disjoint regions
and crawls them concurrently, one session (with its own server
connection) per worker -- the merged bag and total cost are
deterministic and match a sequential partitioned crawl exactly (see
:mod:`repro.crawl.executors`).  ``--executor`` picks the backend
(``thread`` overlaps simulated round trips, ``process`` escapes the
GIL on CPU-bound engines, ``async`` coordinates awaitable sources) and
``--rebalance`` turns on work stealing, which moves regions off the
slowest session without changing the result.  ``--shard-subtrees``
additionally splits each region's crawl frontier into subtree shards
(:mod:`repro.crawl.sharding`) so idle workers can steal *subqueries of
a live region* -- the lever that helps when one heavy region dominates
the plan.  ``--max-regions`` caps how many regions the default
partition planner may produce (see
:func:`~repro.crawl.partition.partition_space`).

``--budget N`` puts one server-side :class:`QueryBudget` of ``N``
queries in front of *all* sessions together -- the paper's global
interface limit.  ``--shared-limits`` keeps that budget (and any other
server-side limits/stats) exactly-once on the process backend by
routing admissions through the shared-state control plane
(:mod:`repro.crawl.coordinator`); in-process backends already share the
budget object and are unaffected.  ``--progress-live`` prints a
line-per-session progress view (to stderr) while the crawl runs, with
failed sessions marked distinctly.

``--checkpoint PATH`` persists the crawl's progress to ``PATH`` as it
runs (atomically rewritten at every region boundary with ``--workers >
1``; the response cache on a single-session crawl, also saved when a
budget runs out), and ``--resume PATH`` restarts a killed crawl from
such a file: the finished prefix is restored without re-issuing a
single query, and the final output is byte-identical to an
uninterrupted run (see :mod:`repro.crawl.checkpoint`).  ``--resume``
keeps checkpointing to the same file, so a crawl spread over many
days -- the paper's per-IP quota regime -- survives any number of
kills.

This is a simulation utility: the CSV plays the role of the hidden
content, and the reported cost is what a crawl of a real server with
the same data would pay.
"""

from __future__ import annotations

import argparse
import sys
import threading
from pathlib import Path

from repro.crawl import profiling
from repro.crawl.base import ProgressAggregator, SessionState
from repro.crawl.checkpoint import (
    CheckpointWriter,
    load_checkpoint,
    load_crawl_checkpoint,
    save_checkpoint,
)
from repro.crawl.executors import EXECUTORS
from repro.crawl.parallel import crawl_partitioned_parallel
from repro.crawl.partition import DEFAULT_MAX_REGIONS, partition_space
from repro.crawl.sharding import DEFAULT_MAX_SHARDS
from repro.crawl.spec import ALGORITHMS, spec_from_args
from repro.crawl.verify import verify_complete
from repro.datasets.io import load_csv, save_csv
from repro.exceptions import (
    InfeasibleCrawlError,
    QueryBudgetExhausted,
    ReproError,
)
from repro.server.client import CachingClient
from repro.server.limits import QueryBudget
from repro.server.server import TopKServer


def _shard_subtrees_value(value: str):
    """Parse ``--shard-subtrees``: a positive int target or ``auto``."""
    if value == "auto":
        return "auto"
    return int(value)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.crawl",
        description="Simulate crawling a CSV-backed hidden database.",
    )
    parser.add_argument("csv", help="dataset CSV (schema-carrying header)")
    parser.add_argument("--k", type=int, required=True, help="retrieval limit")
    parser.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default="hybrid",
        help="crawling algorithm (default: hybrid, works on any schema)",
    )
    parser.add_argument("--seed", type=int, default=0, help="priority seed")
    parser.add_argument(
        "--bounds-from-data",
        action="store_true",
        help="attach observed min/max bounds to numeric attributes "
        "(required by binary-shrink)",
    )
    parser.add_argument("--output", help="write the extracted bag to this CSV")
    parser.add_argument(
        "--max-queries", type=int, default=None, help="sanity cap on cost"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="partition the space into this many disjoint regions and "
        "crawl them concurrently, one session per worker "
        "(default: 1, a single unpartitioned crawl)",
    )
    parser.add_argument(
        "--executor",
        choices=sorted(EXECUTORS),
        default="thread",
        help="concurrency backend for --workers > 1: thread overlaps "
        "round trips, process escapes the GIL on CPU-bound engines, "
        "async coordinates awaitable sources (default: thread)",
    )
    parser.add_argument(
        "--rebalance",
        action="store_true",
        help="steal regions from the slowest session instead of "
        "following the static partition (results are unchanged)",
    )
    parser.add_argument(
        "--shard-subtrees",
        type=_shard_subtrees_value,
        nargs="?",
        const=DEFAULT_MAX_SHARDS,
        default=None,
        metavar="N|auto",
        help="split each region's crawl frontier into subtree shards "
        "that idle workers can steal, targeting N per region "
        f"(default N: {DEFAULT_MAX_SHARDS}; a frontier naturally "
        "wider than N is kept whole; results are unchanged), or "
        "'auto' to presplit only regions whose estimated cost "
        "exceeds the fleet's fair share; most effective together "
        "with --rebalance on skewed data",
    )
    parser.add_argument(
        "--max-regions",
        type=int,
        default=None,
        metavar="N",
        help="cap the number of regions the default partition planner "
        f"may produce (default: {DEFAULT_MAX_REGIONS}); steers the "
        "planner off huge categorical domains",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="N",
        help="put one server-side query budget of N queries in front "
        "of all sessions together (the paper's interface limit); the "
        "crawl fails cleanly when it runs out",
    )
    parser.add_argument(
        "--shared-limits",
        action="store_true",
        help="keep server-side limits/stats exactly-once on the "
        "process backend via the shared-state control plane "
        "(in-process backends already share them; no-op there)",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="persist crawl progress to PATH while running (atomically "
        "rewritten at every region boundary with --workers > 1, saved "
        "on completion or budget exhaustion with --workers 1) so a "
        "killed crawl can be resumed with --resume",
    )
    parser.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help="resume a killed crawl from a checkpoint written by "
        "--checkpoint: the finished prefix costs zero queries and the "
        "output is byte-identical to an uninterrupted run; progress "
        "keeps checkpointing to the same file",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print the progressiveness curve (deciles)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a wall-clock phase breakdown of the crawl hot path "
        "to stderr after the run (cache traffic, engine time, region "
        "phases; see docs/performance.md) -- the crawl itself is "
        "unchanged: same queries, same cost, byte-identical results",
    )
    parser.add_argument(
        "--progress-live",
        action="store_true",
        help="print a live line-per-session progress view to stderr "
        "while a multi-worker crawl runs (failed sessions are marked "
        "FAILED)",
    )
    return parser


def render_live_progress(aggregator: ProgressAggregator) -> str:
    """One line per session: state (FAILED in caps), queries, tuples.

    The ``--progress-live`` view over an aggregator snapshot.  Failed
    and cancelled sessions render their state in upper case so a dead
    session is visually distinct from slow ``running`` / finished
    ``done`` ones.
    """
    lines = []
    for session, (point, state) in enumerate(aggregator.snapshot()):
        label = state.value
        if state in (SessionState.FAILED, SessionState.CANCELLED):
            label = label.upper()
        lines.append(
            f"session {session}: {label:<9} "
            f"queries={point.queries} tuples={point.tuples}"
        )
    return "\n".join(lines)


def _watch_progress(
    aggregator: ProgressAggregator,
    stop: threading.Event,
    stream,
    interval: float,
) -> None:
    """Print the live view whenever it changes; once more on stop."""
    last = None
    while True:
        finished = stop.wait(interval)
        text = render_live_progress(aggregator)
        if text != last:
            print(text, file=stream, flush=True)
            last = text
        if finished:
            return


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if not args.profile:
        return _main(args)
    # --profile wraps the whole run in an active profiling seam; the
    # phase table goes to stderr so stdout stays byte-identical to an
    # unprofiled run (tests/crawl/test_profiling.py pins this).
    with profiling.profile() as profiler:
        code = _main(args)
    print("profile (wall-clock phases):", file=sys.stderr)
    print(profiler.format(), file=sys.stderr)
    return code


def _main(args: argparse.Namespace) -> int:
    if args.workers < 1:
        print(
            f"error: --workers must be positive, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    if (
        args.shard_subtrees is not None
        and args.shard_subtrees != "auto"
        and args.shard_subtrees < 1
    ):
        print(
            "error: --shard-subtrees must be positive, got "
            f"{args.shard_subtrees}",
            file=sys.stderr,
        )
        return 2
    if args.budget is not None and args.budget < 1:
        print(
            f"error: --budget must be positive, got {args.budget}",
            file=sys.stderr,
        )
        return 2
    if args.resume is not None and not Path(args.resume).exists():
        print(
            f"error: --resume checkpoint {args.resume} does not exist "
            "(start with --checkpoint to create one)",
            file=sys.stderr,
        )
        return 2
    # --resume keeps checkpointing to the same file unless --checkpoint
    # points the writes somewhere else.
    checkpoint_path = args.checkpoint or args.resume
    if args.workers == 1 and (
        args.executor != "thread"
        or args.rebalance
        or args.shard_subtrees is not None
        or args.shared_limits
        or args.progress_live
    ):
        print(
            "note: --executor/--rebalance/--shard-subtrees/"
            "--shared-limits/--progress-live only take effect with "
            "--workers > 1; running a single unpartitioned crawl",
            file=sys.stderr,
        )
    try:
        dataset = load_csv(args.csv)
    except (OSError, ReproError) as exc:
        print(f"error: cannot load {args.csv}: {exc}", file=sys.stderr)
        return 2
    if args.bounds_from_data:
        dataset = dataset.with_bounds_from_data()
    print(
        f"dataset: n={dataset.n}, d={dataset.dimensionality}, "
        f"kind={dataset.space.kind.value}, "
        f"min feasible k={dataset.min_feasible_k()}"
    )
    algorithm = ALGORITHMS[args.algorithm]
    if (
        args.budget is not None
        and args.workers > 1
        and args.executor == "process"
        and not args.shared_limits
    ):
        print(
            "note: --budget with --executor process admits per worker-"
            "process copy; add --shared-limits to enforce it exactly "
            "once across the pool",
            file=sys.stderr,
        )
    budget = QueryBudget(args.budget) if args.budget is not None else None
    limits = [budget] if budget is not None else []
    try:
        if args.workers == 1:
            server = TopKServer(
                dataset, args.k, priority_seed=args.seed, limits=limits
            )
            if checkpoint_path is None:
                source = server
            else:
                # Checkpointing a single session persists the response
                # cache: a resumed crawl replays the finished prefix
                # from the file instead of re-querying the server.
                source = CachingClient(server)
                if args.resume is not None:
                    restored = load_checkpoint(source, args.resume)
                    print(
                        f"resumed from {args.resume}: {restored} cached "
                        "responses restored",
                        file=sys.stderr,
                    )
            crawler = algorithm(source, max_queries=args.max_queries)
            try:
                result = crawler.crawl()
            except QueryBudgetExhausted:
                # The cache already paid for these queries; keep them.
                if checkpoint_path is not None:
                    save_checkpoint(source, checkpoint_path)
                raise
            if checkpoint_path is not None:
                save_checkpoint(source, checkpoint_path)
        else:
            plan = partition_space(
                dataset.space, args.workers, max_regions=args.max_regions
            )
            sources = [
                TopKServer(
                    dataset, args.k, priority_seed=args.seed, limits=limits
                )
                for _ in range(plan.sessions)
            ]
            completed = {}
            writer = None
            if args.resume is not None:
                checkpoint = load_crawl_checkpoint(
                    args.resume, plan, args.k
                )
                completed = checkpoint.completed
                if checkpoint.budget is not None and budget is not None:
                    stored = checkpoint.budget
                    # Same limit, not yet refused: the kill happened
                    # mid-window, so the stored charge still counts
                    # against this run's quota.  A different --budget
                    # or an exhausted window is the paper's quota
                    # *reset*: the user's limit stands untouched --
                    # restoring the old counters here would resurrect
                    # the exhausted window and refuse every query.
                    same_window = (
                        int(stored.get("max_queries", -1)) == args.budget
                        and not stored.get("refused", False)
                    )
                    if same_window:
                        budget.restore_state(stored)
                    else:
                        print(
                            f"budget window reset: {args.budget} fresh "
                            "queries (the checkpointed charge belonged "
                            "to the previous window)",
                            file=sys.stderr,
                        )
                print(
                    f"resumed from {args.resume}: {len(completed)} of "
                    f"{len(plan.regions)} regions restored",
                    file=sys.stderr,
                )
            if checkpoint_path is not None:
                writer = CheckpointWriter(
                    checkpoint_path,
                    plan,
                    args.k,
                    budget=budget,
                    completed=completed,
                )
                # Seed the file now, so a kill before the first region
                # boundary still leaves a loadable (empty) checkpoint.
                writer.write()
            aggregator = None
            monitor = stop = None
            if args.progress_live:
                aggregator = ProgressAggregator(plan.sessions)
                stop = threading.Event()
                monitor = threading.Thread(
                    target=_watch_progress,
                    args=(aggregator, stop, sys.stderr, 0.2),
                    daemon=True,
                )
                monitor.start()
            # One flag->spec mapping, shared with repro-serve: the
            # parser's namespace becomes the spec's backend + run
            # halves; only the run-scoped extras (live aggregator,
            # resume prefix, checkpoint seam) are grafted on here.
            spec = spec_from_args(args).replace(
                aggregator=aggregator,
                completed=completed,
                on_region=(
                    writer.region_done if writer is not None else None
                ),
            )
            try:
                merged = crawl_partitioned_parallel(sources, plan, spec=spec)
            finally:
                if monitor is not None:
                    stop.set()
                    monitor.join()
            mode = args.executor + (" + rebalance" if args.rebalance else "")
            if args.shard_subtrees == "auto":
                mode += " + adaptive subtree shards"
            elif args.shard_subtrees is not None:
                mode += f" + {args.shard_subtrees}-way subtree shards"
            if args.shared_limits:
                mode += " + shared limits"
            print(
                f"plan: {len(plan.regions)} regions on "
                f"{dataset.space[plan.attribute].name!r}, "
                f"{plan.sessions} concurrent sessions via {mode} "
                f"(per-session cost: {merged.session_costs()})"
            )
            result = merged.as_crawl_result(
                f"{args.algorithm} x{plan.sessions} sessions"
            )
    except InfeasibleCrawlError as exc:
        print(f"infeasible at k={args.k}: {exc}", file=sys.stderr)
        return 3
    except QueryBudgetExhausted as exc:
        # Without shared limits the parent's budget object is untouched
        # by pool workers (each admitted against its own copy); fall
        # back to the exception's own count so the message never reads
        # "0 queries charged" on the process backend.
        used = exc.issued
        if budget is not None and budget.used:
            used = budget.used
        print(
            f"budget exhausted: {exc} ({used} queries charged)",
            file=sys.stderr,
        )
        if checkpoint_path is not None:
            print(
                f"progress checkpointed to {checkpoint_path}; continue "
                f"with --resume {checkpoint_path} once the limit resets",
                file=sys.stderr,
            )
        return 4
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = verify_complete(result, dataset)
    print(
        f"crawl: {result.cost} queries, {result.tuples_extracted} tuples "
        f"({result.algorithm})"
    )
    if result.phase_costs:
        phases = ", ".join(f"{k}={v}" for k, v in result.phase_costs.items())
        print(f"phases: {phases}")
    print(f"verify: {report.summary()}")
    if args.progress:
        curve = result.progress_fractions()
        print("progress (queries% -> tuples%):")
        for target in (0.1, 0.25, 0.5, 0.75, 0.9, 1.0):
            reached = max(
                (p for p in curve if p[0] <= target),
                default=(0.0, 0.0),
                key=lambda p: (p[0], p[1]),
            )
            print(f"  {target:>5.0%} -> {reached[1]:.1%}")
    if args.output:
        save_csv(result.as_dataset(), args.output)
        print(f"extracted bag written to {args.output}")
    return 0 if report.complete else 1


if __name__ == "__main__":
    raise SystemExit(main())
