"""Intra-session subtree sharding: a splittable crawler front.

A partition plan's unit of scheduling used to be the *region*: one
session's whole-region crawl could not be split, so a single heavy
region (one huge categorical value on an NSF-like schema, say)
serialised the crawl no matter how many workers were available.  This
module makes the crawl of one region itself splittable:

* :func:`presplit_region` runs the region's crawler just far enough to
  expose its pending-subtree frontier and returns a
  :class:`RegionShardPlan`: the *trunk* (everything the planner already
  crawled, captured segment by segment) plus the frontier's
  :class:`SubtreeShard` entries -- pairwise-disjoint subtree roots, in
  the exact order the sequential crawl would process them, split until
  at least ``max_shards`` are pending (bounds on
  :data:`DEFAULT_MAX_SHARDS`);
* :func:`crawl_shard` crawls one shard independently (any worker, any
  time, against the region's own session source);
* :func:`merge_region_shards` splices the shard results back into the
  trunk at their canonical positions, reproducing the sequential
  region crawl **byte for byte**: same rows in the same order, same
  cost, same progress curve.

Why the splice is exact
-----------------------
The shrink algorithms are stack-driven: once a pending subtree is
popped, its entire subtree is processed before anything beneath it on
the stack.  The planner therefore executes a *prefix* of the sequential
crawl (issuing exactly the queries the sequential crawl would issue
first) and stops with the remaining stack as the frontier.  Each
frontier entry is a rectangle no query of any other subtree can touch
-- splits strictly refine, so every query of the region crawl is a
distinct rectangle -- which is what lets each shard run on a *fresh*
:class:`~repro.server.client.CachingClient` without losing cache hits
the sequential crawl would have had.  The one genuine cross-link -- a
hybrid leaf whose root query equals an already-consulted slice query
(``cat == 1``) -- is carried along explicitly as the shard's ``seed``
response and pre-loaded into the shard's cache, so the shard replays
the sequential cache hit at zero cost.

Splittable algorithms are :class:`~repro.crawl.hybrid.Hybrid` (numeric
leaf sub-crawls are deferred into shards via its
``defer_numeric_leaf`` hook, then grown further with
:func:`~repro.crawl.rank_shrink.explore_numeric`),
:class:`~repro.crawl.rank_shrink.RankShrink` and
:class:`~repro.crawl.binary_shrink.BinaryShrink` (frontier truncation
of their work stacks).  Any other crawler degrades gracefully: the
whole region becomes the trunk and the plan carries zero shards.

Caveats (shared with the rebalancing layer): source-side *limits*
fire by cumulative query order, which sharding reorders -- parity with
the sequential executor is guaranteed for crawls that complete within
their limits.  A ``max_queries`` sanity cap is enforced on the trunk
crawler only, not across shards.
"""

from __future__ import annotations

import functools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.crawl import profiling
from repro.crawl.base import Crawler, CrawlResult, ProgressPoint
from repro.crawl.binary_shrink import (
    BinaryShrink,
    explore_binary,
    solve_binary,
)
from repro.crawl.hybrid import Hybrid
from repro.crawl.partition import SubspaceView, _crawl_region
from repro.crawl.rank_shrink import RankShrink, explore_numeric, solve_numeric
from repro.exceptions import (
    AlgorithmInvariantError,
    QueryBudgetExhausted,
    SchemaError,
)
from repro.query.query import Query
from repro.server.response import QueryResponse, Row

__all__ = [
    "DEFAULT_MAX_SHARDS",
    "SubtreeShard",
    "TrunkSegment",
    "RegionShardPlan",
    "SubtreeCrawler",
    "presplit_region",
    "crawl_shard",
    "merge_region_shards",
]

#: Default subtree-shard target per region.  Constant (never derived
#: from worker counts), so the shard plan -- and with it the merged
#: result -- is identical across executor backends.  The target bounds
#: *splitting*, not the frontier itself: a region whose crawl naturally
#: exposes more pending subtrees (e.g. a hybrid crawl with more
#: overflowing categorical leaves than the target) keeps them all, and
#: a final 3-way split may overshoot the target by up to two.
DEFAULT_MAX_SHARDS = 8

_RANK = "rank-shrink"
_BINARY = "binary-shrink"


@dataclass(frozen=True)
class SubtreeShard:
    """One independently crawlable subtree of a region's frontier.

    Attributes
    ----------
    order:
        Canonical position among the region's shards: crawling shards
        in ``order`` replays the sequential crawl.
    query:
        The subtree's root rectangle; every query of the shard's crawl
        refines it.
    dims:
        Split order of the remaining numeric attributes (rank-shrink
        shards; empty for binary-shrink shards).
    algo:
        ``"rank-shrink"`` or ``"binary-shrink"`` -- which shrink rule
        continues the subtree.
    threshold_divisor:
        The rank-shrink case threshold the parent crawler used.
    seed:
        A response the planner's crawl already holds for ``query``
        (e.g. a hybrid leaf whose root equals a consulted slice); it is
        pre-loaded into the shard's cache so the shard replays the
        sequential cache hit instead of re-paying the query.
    phase:
        Cost phase the shard's queries belong to in the sequential
        accounting (e.g. ``"traversal"`` for eager hybrid), or ``None``.
    """

    order: int
    query: Query
    dims: tuple[int, ...]
    algo: str
    threshold_divisor: int
    seed: QueryResponse | None
    phase: str | None


@dataclass(frozen=True)
class TrunkSegment:
    """A contiguous stretch of the trunk between two shard positions.

    ``progress`` points are deltas from the segment's start state, so
    the merge can re-base them wherever the segment lands once shard
    costs are spliced in before it.
    """

    rows: tuple[Row, ...]
    progress: tuple[ProgressPoint, ...]
    cost: int


_EMPTY_SEGMENT = TrunkSegment(rows=(), progress=(), cost=0)


def _concat_segments(a: TrunkSegment, b: TrunkSegment) -> TrunkSegment:
    if not b.rows and not b.progress and not b.cost:
        return a
    return TrunkSegment(
        rows=a.rows + b.rows,
        progress=a.progress
        + tuple(
            ProgressPoint(p.queries + a.cost, p.tuples + len(a.rows))
            for p in b.progress
        ),
        cost=a.cost + b.cost,
    )


@dataclass(frozen=True)
class RegionShardPlan:
    """A region crawl decomposed into a trunk and subtree shards.

    ``segments[i]`` precedes ``shards[i]`` in canonical order;
    ``segments[-1]`` is the trunk's tail, so ``len(segments) ==
    len(shards) + 1``.  The plan is a pure function of (source, region,
    crawler factory, ``max_shards``) -- every executor backend computes
    the same plan, which is what keeps the merged result byte-identical
    across backends and stealing schedules.
    """

    region: Query
    algorithm: str
    segments: tuple[TrunkSegment, ...]
    shards: tuple[SubtreeShard, ...]
    trunk_phase_costs: dict[str, int] = field(default_factory=dict)
    complete: bool = True

    @property
    def trunk_cost(self) -> int:
        """Queries the planner itself issued (the serial fraction)."""
        return sum(segment.cost for segment in self.segments)

    def __repr__(self) -> str:
        return (
            f"RegionShardPlan({self.algorithm}, {len(self.shards)} shards, "
            f"trunk cost {self.trunk_cost})"
        )


class SubtreeCrawler(Crawler):
    """Continues one :class:`SubtreeShard` exactly as its parent would.

    A fresh crawler (and cache) per shard keeps the shard's
    :class:`~repro.crawl.base.CrawlResult` a pure function of (source,
    region, shard) -- crawlable by any worker, at any time, with a
    deterministic outcome.
    """

    name = "subtree-shard"

    def __init__(self, source, shard: SubtreeShard):
        super().__init__(source)
        self._shard = shard

    def _execute(self) -> None:
        shard = self._shard
        if shard.seed is not None:
            # Replay the planner's cached response for the shard root
            # (zero cost), exactly as the sequential crawl would have.
            self.client._store_local(shard.query, shard.seed)
        if shard.algo == _BINARY:
            solve_binary(self, shard.query)
        else:
            solve_numeric(
                self,
                shard.query,
                list(shard.dims),
                threshold_divisor=shard.threshold_divisor,
            )


class _RegionPlanner:
    """Captures a trunk crawl as segments interleaved with shard slots.

    Drives one crawler instance (the *trunk crawler*) and reads its
    progress/row accumulators at every boundary: a hybrid leaf deferral
    or a frontier exploration closes the current segment.  Segments
    store delta progress, so the final plan can be spliced back
    together in canonical order no matter when each piece actually ran.
    """

    def __init__(self, crawler: Crawler, max_shards: int):
        if max_shards < 1:
            raise SchemaError(f"max_shards must be positive, got {max_shards}")
        self._crawler = crawler
        self._max_shards = max_shards
        self._events: list[TrunkSegment | _TaskNode] = []
        self._progress_mark = 0
        self._row_mark = 0
        self._state = (0, 0)

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    def _capture_segment(self) -> TrunkSegment:
        """Close the current trunk segment (possibly empty)."""
        crawler = self._crawler
        q0, t0 = self._state
        progress_mark, row_mark = self._progress_mark, self._row_mark
        points = tuple(
            ProgressPoint(p.queries - q0, p.tuples - t0)
            for p in crawler._progress[progress_mark:]
        )
        rows = tuple(crawler._confirmed[row_mark:])
        q1 = crawler._queries_this_crawl
        t1 = len(crawler._confirmed)
        segment = TrunkSegment(rows=rows, progress=points, cost=q1 - q0)
        self._progress_mark = len(crawler._progress)
        self._row_mark = len(crawler._confirmed)
        self._state = (q1, t1)
        return segment

    def defer(self, leaf_query: Query, dims: Sequence[int]) -> None:
        """Hybrid's ``defer_numeric_leaf`` hook: park a leaf sub-crawl."""
        crawler = self._crawler
        self._events.append(self._capture_segment())
        self._events.append(
            _TaskNode(
                _PendingTask(
                    query=leaf_query,
                    dims=tuple(dims),
                    algo=_RANK,
                    threshold_divisor=getattr(
                        crawler, "_threshold_divisor", 4
                    ),
                    seed=crawler.client.peek(leaf_query),
                    phase=crawler.client.stats.current_phase,
                )
            )
        )

    def seed_task(self, task: "_PendingTask") -> None:
        """Plant the root task of a stack-driven crawler (rank/binary)."""
        self._events.append(_TaskNode(task))

    # ------------------------------------------------------------------
    # Growth: split pending tasks until the shard target is met
    # ------------------------------------------------------------------
    def grow(self) -> None:
        """Expand pending subtrees until ``max_shards`` are pending.

        Breadth-first over the pending tasks: each step runs the
        algorithm's own shrink loop on one subtree root just far enough
        to split it (or drain it, when it turns out tiny), then moves
        on to the next task, so the final shards partition the region's
        remaining work into comparably sized subtrees instead of one
        heavy spine.  Every query issued here is one the sequential
        crawl would have issued anyway -- growth only *reorders* the
        trunk's work, and the positional segment capture puts every
        piece back at its canonical place.
        """
        # Everything the trunk crawl produced after its last deferral
        # belongs *after* every shard in canonical order; hold it aside
        # so exploration segments are captured cleanly.
        tail = self._capture_segment()
        worklist: deque[_TaskNode] = deque(
            item for item in self._events if isinstance(item, _TaskNode)
        )
        count = len(worklist)
        while worklist and count < self._max_shards:
            node = worklist.popleft()
            children = self._explore(node.task, min_pending=2)
            node.segment = self._capture_segment()
            node.children = [_TaskNode(child) for child in children]
            count += len(node.children) - 1
            worklist.extend(node.children)
        self._events.append(tail)

    def _explore(
        self, task: "_PendingTask", min_pending: int
    ) -> list["_PendingTask"]:
        crawler = self._crawler
        if task.phase is not None:
            crawler.client.begin_phase(task.phase)
        try:
            if task.algo == _BINARY:
                pending = explore_binary(
                    crawler, task.query, min_pending=min_pending
                )
            else:
                pending = explore_numeric(
                    crawler,
                    task.query,
                    list(task.dims),
                    threshold_divisor=task.threshold_divisor,
                    min_pending=min_pending,
                )
        finally:
            if task.phase is not None:
                crawler.client.end_phase()
        return [
            _PendingTask(
                query=query,
                dims=task.dims,
                algo=task.algo,
                threshold_divisor=task.threshold_divisor,
                # A split-time sibling battery may have prefetched a
                # frontier root before the drain loop cut off; carry
                # the trunk's cached response so the shard replays it
                # at zero cost instead of re-charging it.
                seed=crawler.client.peek(query),
                phase=task.phase,
            )
            for query in pending
        ]

    # ------------------------------------------------------------------
    # Finalise
    # ------------------------------------------------------------------
    def plan(self, region: Query, complete: bool) -> RegionShardPlan:
        # Any points produced since the last capture (e.g. a partial
        # growth cut short by a budget) belong to the tail.
        trailing = self._capture_segment()
        flat: list[TrunkSegment | _PendingTask] = []
        for item in self._events:
            _flatten_event(item, flat)
        flat.append(trailing)
        segments: list[TrunkSegment] = []
        shards: list[SubtreeShard] = []
        accumulator = _EMPTY_SEGMENT
        for item in flat:
            if isinstance(item, _PendingTask):
                segments.append(accumulator)
                accumulator = _EMPTY_SEGMENT
                shards.append(item.as_shard(len(shards)))
            else:
                accumulator = _concat_segments(accumulator, item)
        segments.append(accumulator)
        return RegionShardPlan(
            region=region,
            algorithm=self._crawler.name,
            segments=tuple(segments),
            shards=tuple(shards),
            trunk_phase_costs=dict(
                self._crawler.client.stats.phase_costs
            ),
            complete=complete,
        )


class _TaskNode:
    """A pending task and, once explored, its replacement subtree.

    ``children is None`` marks an unexplored leaf (it becomes a shard);
    an explored node contributes its exploration segment followed by
    its children at its canonical position.
    """

    __slots__ = ("task", "segment", "children")

    def __init__(self, task: "_PendingTask"):
        self.task = task
        self.segment: TrunkSegment | None = None
        self.children: list["_TaskNode"] | None = None


def _flatten_event(
    item: "TrunkSegment | _TaskNode",
    out: "list[TrunkSegment | _PendingTask]",
) -> None:
    """Expand explored nodes into (segment, children...) in place-order."""
    if isinstance(item, TrunkSegment):
        out.append(item)
        return
    if item.children is None:
        out.append(item.task)
        return
    assert item.segment is not None
    out.append(item.segment)
    for child in item.children:
        _flatten_event(child, out)


@dataclass(frozen=True)
class _PendingTask:
    """A deferred subtree during planning (becomes a shard if kept)."""

    query: Query
    dims: tuple[int, ...]
    algo: str
    threshold_divisor: int
    seed: QueryResponse | None
    phase: str | None

    def as_shard(self, order: int) -> SubtreeShard:
        return SubtreeShard(
            order=order,
            query=self.query,
            dims=self.dims,
            algo=self.algo,
            threshold_divisor=self.threshold_divisor,
            seed=self.seed,
            phase=self.phase,
        )


def _resolve_crawler_class(crawler_factory) -> type | None:
    """The concrete crawler class behind a factory, if recognisable."""
    target = crawler_factory
    while isinstance(target, functools.partial):
        target = target.func
    return target if isinstance(target, type) else None


def presplit_region(
    source,
    region: Query,
    *,
    crawler_factory: Callable[..., Crawler] = Hybrid,
    allow_partial: bool = False,
    max_shards: int = DEFAULT_MAX_SHARDS,
    listener: Callable[[ProgressPoint], None] | None = None,
) -> RegionShardPlan:
    """Decompose one region's crawl into a trunk and subtree shards.

    Runs the region's crawler (built by ``crawler_factory`` over the
    region's :class:`~repro.crawl.partition.SubspaceView`, exactly as
    :func:`~repro.crawl.partition._crawl_region` would) just far enough
    to expose a frontier of pending subtrees.  ``max_shards`` is the
    *splitting target*: subtrees are split until at least that many are
    pending (see :data:`DEFAULT_MAX_SHARDS` for the exact bounds -- a
    frontier that naturally holds more subtrees is kept whole, and the
    final split may overshoot by up to two).  The plan is
    deterministic, and splicing the shard results back with
    :func:`merge_region_shards` reproduces the unsharded region crawl
    byte for byte.

    Unsplittable crawler factories (anything that is not ``Hybrid``,
    ``RankShrink`` or ``BinaryShrink``) degrade gracefully: the region
    is crawled whole and the returned plan carries zero shards.
    """
    cls = _resolve_crawler_class(crawler_factory)
    if cls is not None and issubclass(cls, Hybrid):
        crawler = crawler_factory(SubspaceView(source, region))
        if listener is not None:
            crawler.add_progress_listener(listener)
        planner = _RegionPlanner(crawler, max_shards)
        crawler.defer_numeric_leaf = planner.defer
        trunk = crawler.crawl(allow_partial=allow_partial)
        complete = trunk.complete
        if complete:
            complete = _grow_guarded(planner, allow_partial)
        return planner.plan(region, complete)
    if cls is not None and issubclass(cls, (RankShrink, BinaryShrink)):
        crawler = crawler_factory(SubspaceView(source, region))
        if listener is not None:
            crawler.add_progress_listener(listener)
        planner = _RegionPlanner(crawler, max_shards)
        if issubclass(cls, BinaryShrink):
            planner.seed_task(
                _PendingTask(
                    query=crawler.frontier_entry(),
                    dims=(),
                    algo=_BINARY,
                    threshold_divisor=4,
                    seed=None,
                    phase=None,
                )
            )
        else:
            root, dims = crawler.frontier_entry()
            planner.seed_task(
                _PendingTask(
                    query=root,
                    dims=dims,
                    algo=_RANK,
                    threshold_divisor=getattr(
                        crawler, "_threshold_divisor", 4
                    ),
                    seed=None,
                    phase=None,
                )
            )
        complete = _grow_guarded(planner, allow_partial)
        return planner.plan(region, complete)
    result = _crawl_region(
        source,
        region,
        crawler_factory=crawler_factory,
        allow_partial=allow_partial,
        listener=listener,
    )
    return RegionShardPlan(
        region=region,
        algorithm=result.algorithm,
        segments=(
            TrunkSegment(
                rows=tuple(result.rows),
                progress=tuple(result.progress),
                cost=result.cost,
            ),
        ),
        shards=(),
        trunk_phase_costs=dict(result.phase_costs),
        complete=result.complete,
    )


def _grow_guarded(planner: _RegionPlanner, allow_partial: bool) -> bool:
    """Run frontier growth, honouring ``allow_partial`` on budgets."""
    try:
        planner.grow()
    except QueryBudgetExhausted:
        if not allow_partial:
            raise
        return False
    return True


def crawl_shard(
    source,
    region: Query,
    shard: SubtreeShard,
    *,
    allow_partial: bool = False,
    listener: Callable[[ProgressPoint], None] | None = None,
) -> CrawlResult:
    """Crawl one subtree shard against its region's session source."""
    crawler = SubtreeCrawler(SubspaceView(source, region), shard)
    if listener is not None:
        crawler.add_progress_listener(listener)
    return crawler.crawl(allow_partial=allow_partial)


def merge_region_shards(
    plan: RegionShardPlan, shard_results: Sequence[CrawlResult]
) -> CrawlResult:
    """Splice shard results into the trunk at their canonical positions.

    ``shard_results[i]`` must be the result of ``plan.shards[i]`` --
    *completion* order is irrelevant, only the canonical order of the
    plan matters, which is why any stealing schedule merges to the same
    bytes.  The returned :class:`~repro.crawl.base.CrawlResult` is
    field-for-field identical to what the unsharded region crawl would
    have produced.
    """
    if len(shard_results) != len(plan.shards):
        raise AlgorithmInvariantError(
            f"plan has {len(plan.shards)} shards but "
            f"{len(shard_results)} results were supplied"
        )
    prof = profiling.active()
    if prof is not None:
        start = profiling.clock()
        try:
            return _merge_region_shards(plan, shard_results)
        finally:
            prof.record("runtime.merge", profiling.clock() - start)
    return _merge_region_shards(plan, shard_results)


def _merge_region_shards(
    plan: RegionShardPlan, shard_results: Sequence[CrawlResult]
) -> CrawlResult:
    rows: list[Row] = []
    progress: list[ProgressPoint] = [ProgressPoint(0, 0)]
    base_queries = 0
    base_tuples = 0

    def emit(point: ProgressPoint) -> None:
        if progress[-1] != point:
            progress.append(point)

    for i, segment in enumerate(plan.segments):
        for p in segment.progress:
            emit(
                ProgressPoint(
                    base_queries + p.queries, base_tuples + p.tuples
                )
            )
        rows.extend(segment.rows)
        base_queries += segment.cost
        base_tuples += len(segment.rows)
        if i < len(shard_results):
            result = shard_results[i]
            for p in result.progress:
                emit(
                    ProgressPoint(
                        base_queries + p.queries, base_tuples + p.tuples
                    )
                )
            rows.extend(result.rows)
            base_queries += result.cost
            base_tuples += len(result.rows)
    phase_costs = dict(plan.trunk_phase_costs)
    for shard, result in zip(plan.shards, shard_results):
        if shard.phase is not None and result.cost:
            phase_costs[shard.phase] = (
                phase_costs.get(shard.phase, 0) + result.cost
            )
        for phase, cost in result.phase_costs.items():
            phase_costs[phase] = phase_costs.get(phase, 0) + cost
    return CrawlResult(
        algorithm=plan.algorithm,
        space=plan.region.space,
        rows=rows,
        cost=base_queries,
        complete=plan.complete
        and all(result.complete for result in shard_results),
        progress=progress,
        phase_costs=phase_costs,
    )
