"""Shared crawler machinery: results, progress tracking, the base class.

Every algorithm of the paper is packaged as a :class:`Crawler`: construct
it around a :class:`~repro.server.server.TopKServer` (or an existing
:class:`~repro.server.client.CachingClient` to share a cache between
phases/algorithms), call :meth:`Crawler.crawl`, and receive a
:class:`CrawlResult` carrying the extracted bag, the query cost, and a
progressiveness log (the data behind the paper's Figure 13).

Correctness contract: a crawler confirms each tuple of the hidden bag
exactly once, because it only confirms results of *resolved* queries (or
locally-filtered resolved slice responses) over pairwise-disjoint regions
of the data space.  :func:`repro.crawl.verify.verify_complete` checks the
contract against the ground truth in every test.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import AlgorithmInvariantError, QueryBudgetExhausted
from repro.query.query import Query
from repro.server.client import CachingClient
from repro.server.response import QueryResponse, Row
from repro.server.server import TopKServer

__all__ = ["ProgressPoint", "CrawlResult", "Crawler"]


@dataclass(frozen=True, slots=True)
class ProgressPoint:
    """One sample of the crawl's progress curve (Figure 13).

    ``queries`` is the cumulative cost at the moment of the sample;
    ``tuples`` is the number of tuples confirmed (extracted with
    certainty) by then.
    """

    queries: int
    tuples: int


@dataclass
class CrawlResult:
    """Everything a finished (or interrupted) crawl produced.

    Attributes
    ----------
    algorithm:
        Name of the crawler that produced the result.
    rows:
        The extracted bag, tuple by tuple (with multiplicity).
    cost:
        Number of queries issued (the Problem 1 cost metric).
    complete:
        ``True`` for a finished crawl; ``False`` when a query budget
        interrupted it (``allow_partial=True``).
    progress:
        Monotone samples of (queries issued, tuples confirmed); the raw
        series behind the paper's progressiveness experiment.
    phase_costs:
        Per-phase query subtotals (e.g. slice-cover's preprocessing vs
        traversal).
    """

    algorithm: str
    space: DataSpace
    rows: list[Row]
    cost: int
    complete: bool
    progress: list[ProgressPoint]
    phase_costs: dict[str, int] = field(default_factory=dict)

    @property
    def tuples_extracted(self) -> int:
        """Size of the extracted bag."""
        return len(self.rows)

    def as_dataset(self, name: str = "") -> Dataset:
        """The extracted bag as a :class:`Dataset` (for verification)."""
        return Dataset(self.space, self.rows, name=name, validate=False)

    def progress_fractions(self) -> list[tuple[float, float]]:
        """Progress normalised to (fraction of queries, fraction of tuples).

        This is exactly the curve of the paper's Figure 13.  Empty
        crawls (zero cost or zero tuples) normalise to 1.0 to keep the
        curve well-defined.
        """
        total_queries = max(1, self.cost)
        total_tuples = max(1, len(self.rows))
        return [
            (p.queries / total_queries, p.tuples / total_tuples)
            for p in self.progress
        ]

    def __repr__(self) -> str:
        state = "complete" if self.complete else "partial"
        return (
            f"CrawlResult({self.algorithm}, {len(self.rows)} tuples, "
            f"{self.cost} queries, {state})"
        )


class Crawler(abc.ABC):
    """Base class of all crawling algorithms.

    Parameters
    ----------
    source:
        A :class:`TopKServer` (a fresh caching client is created) or a
        :class:`CachingClient` (shared cache; cost accumulates there).
    max_queries:
        Optional hard sanity cap.  Exceeding it raises
        :class:`AlgorithmInvariantError` -- tests set the cap from the
        Theorem 1 bounds so a regression that breaks a guarantee fails
        fast instead of looping.
    """

    #: Human-readable algorithm name; subclasses override.
    name: str = "crawler"

    def __init__(
        self,
        source: TopKServer | CachingClient,
        *,
        max_queries: int | None = None,
    ):
        if isinstance(source, CachingClient):
            self._client = source
        else:
            self._client = CachingClient(source)
        self._max_queries = max_queries
        self._confirmed: list[Row] = []
        self._progress: list[ProgressPoint] = []
        self._queries_this_crawl = 0
        self._started = False

    # ------------------------------------------------------------------
    # Accessors for subclasses
    # ------------------------------------------------------------------
    @property
    def client(self) -> CachingClient:
        """The (possibly shared) caching client."""
        return self._client

    @property
    def space(self) -> DataSpace:
        """The data space being crawled."""
        return self._client.space

    @property
    def k(self) -> int:
        """The server's retrieval limit."""
        return self._client.k

    # ------------------------------------------------------------------
    # Template method
    # ------------------------------------------------------------------
    def crawl(self, *, allow_partial: bool = False) -> CrawlResult:
        """Extract the hidden database.

        Parameters
        ----------
        allow_partial:
            When ``True``, a :class:`QueryBudgetExhausted` from the
            server's limits produces a partial result
            (``result.complete == False``) instead of propagating.

        Raises
        ------
        InfeasibleCrawlError
            If some point provably holds more than ``k`` duplicates.
        QueryBudgetExhausted
            If a limit fires and ``allow_partial`` is ``False``.
        """
        if self._started:
            raise AlgorithmInvariantError(
                "a Crawler instance is single-use; build a new one "
                "(share the CachingClient to keep the response cache)"
            )
        self._started = True
        start_cost = self._client.cost
        self._snapshot()
        complete = True
        try:
            self._execute()
        except QueryBudgetExhausted:
            if not allow_partial:
                raise
            complete = False
        self._snapshot()
        return CrawlResult(
            algorithm=self.name,
            space=self.space,
            rows=list(self._confirmed),
            cost=self._client.cost - start_cost,
            complete=complete,
            progress=list(self._progress),
            phase_costs=dict(self._client.stats.phase_costs),
        )

    @abc.abstractmethod
    def _execute(self) -> None:
        """Run the algorithm; implemented by each concrete crawler."""

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def _run_query(self, query: Query) -> QueryResponse:
        """Issue a query through the cache, enforcing the sanity cap."""
        before = self._client.cost
        response = self._client.run(query)
        issued = self._client.cost - before
        if issued:
            self._queries_this_crawl += issued
            if (
                self._max_queries is not None
                and self._queries_this_crawl > self._max_queries
            ):
                raise AlgorithmInvariantError(
                    f"{self.name} exceeded its max_queries cap of "
                    f"{self._max_queries}"
                )
            self._snapshot()
        return response

    def _confirm(self, rows) -> None:
        """Record tuples extracted with certainty (resolved coverage)."""
        self._confirmed.extend(rows)
        self._snapshot()

    def _snapshot(self) -> None:
        point = ProgressPoint(self._queries_this_crawl, len(self._confirmed))
        if not self._progress or self._progress[-1] != point:
            self._progress.append(point)
