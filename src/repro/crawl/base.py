"""Shared crawler machinery: results, progress tracking, the base class.

Every algorithm of the paper is packaged as a :class:`Crawler`: construct
it around a :class:`~repro.server.server.TopKServer` (or an existing
:class:`~repro.server.client.CachingClient` to share a cache between
phases/algorithms), call :meth:`Crawler.crawl`, and receive a
:class:`CrawlResult` carrying the extracted bag, the query cost, and a
progressiveness log (the data behind the paper's Figure 13).

Correctness contract: a crawler confirms each tuple of the hidden bag
exactly once, because it only confirms results of *resolved* queries (or
locally-filtered resolved slice responses) over pairwise-disjoint regions
of the data space.  :func:`repro.crawl.verify.verify_complete` checks the
contract against the ground truth in every test.
"""

from __future__ import annotations

import abc
import enum
import threading
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import AlgorithmInvariantError, QueryBudgetExhausted
from repro.query.query import Query
from repro.server.client import CachingClient
from repro.server.response import QueryResponse, Row
from repro.server.server import TopKServer

__all__ = [
    "ProgressPoint",
    "CrawlResult",
    "Crawler",
    "ProgressAggregator",
    "SessionState",
    "concat_progress",
    "merge_progress",
]


@dataclass(frozen=True, slots=True)
class ProgressPoint:
    """One sample of the crawl's progress curve (Figure 13).

    ``queries`` is the cumulative cost at the moment of the sample;
    ``tuples`` is the number of tuples confirmed (extracted with
    certainty) by then.
    """

    queries: int
    tuples: int


@dataclass
class CrawlResult:
    """Everything a finished (or interrupted) crawl produced.

    Attributes
    ----------
    algorithm:
        Name of the crawler that produced the result.
    rows:
        The extracted bag, tuple by tuple (with multiplicity).
    cost:
        Number of queries issued (the Problem 1 cost metric).
    complete:
        ``True`` for a finished crawl; ``False`` when a query budget
        interrupted it (``allow_partial=True``).
    progress:
        Monotone samples of (queries issued, tuples confirmed); the raw
        series behind the paper's progressiveness experiment.
    phase_costs:
        Per-phase query subtotals (e.g. slice-cover's preprocessing vs
        traversal).
    """

    algorithm: str
    space: DataSpace
    rows: list[Row]
    cost: int
    complete: bool
    progress: list[ProgressPoint]
    phase_costs: dict[str, int] = field(default_factory=dict)

    @property
    def tuples_extracted(self) -> int:
        """Size of the extracted bag."""
        return len(self.rows)

    def as_dataset(self, name: str = "") -> Dataset:
        """The extracted bag as a :class:`Dataset` (for verification)."""
        return Dataset(self.space, self.rows, name=name, validate=False)

    def progress_fractions(self) -> list[tuple[float, float]]:
        """Progress normalised to (fraction of queries, fraction of tuples).

        This is exactly the curve of the paper's Figure 13.  Empty
        crawls (zero cost or zero tuples) normalise to 1.0 to keep the
        curve well-defined.
        """
        total_queries = max(1, self.cost)
        total_tuples = max(1, len(self.rows))
        return [
            (p.queries / total_queries, p.tuples / total_tuples)
            for p in self.progress
        ]

    def __repr__(self) -> str:
        state = "complete" if self.complete else "partial"
        return (
            f"CrawlResult({self.algorithm}, {len(self.rows)} tuples, "
            f"{self.cost} queries, {state})"
        )


def concat_progress(
    curves: Sequence[Sequence[ProgressPoint]],
) -> list[ProgressPoint]:
    """Concatenate progress curves of crawls run back to back.

    Each crawl's curve starts at ``(0, 0)``; the concatenation offsets
    every curve by the cumulative (queries, tuples) of the crawls before
    it, yielding one monotone curve for the whole sequence (e.g. the
    regions of one partition session, crawled in work-list order).
    """
    merged: list[ProgressPoint] = []
    base_q = base_t = 0
    for curve in curves:
        last_q = last_t = 0
        for p in curve:
            point = ProgressPoint(base_q + p.queries, base_t + p.tuples)
            if not merged or merged[-1] != point:
                merged.append(point)
            last_q, last_t = p.queries, p.tuples
        base_q += last_q
        base_t += last_t
    return merged


def merge_progress(
    curves: Sequence[Sequence[ProgressPoint]],
) -> list[ProgressPoint]:
    """Merge progress curves of crawls that run *concurrently*.

    Sessions advance independently, so there is no single true global
    interleaving; this merge defines the canonical, deterministic one:
    repeatedly advance the session whose next sample has the smallest
    per-session query count (ties broken by session index), emitting the
    sum of the latest per-session samples.  Two properties matter:

    * the result depends only on the per-session curves, never on
      wall-clock scheduling -- reruns merge identically;
    * on the shared quota timeline (sessions spending their per-identity
      budgets in lockstep, e.g. against one
      :class:`~repro.server.limits.SimulatedClock`), the merged curve is
      exactly the fleet's aggregate progress over time.

    The final sample is always the grand total (sum of all sessions'
    last samples).
    """
    latest = [(0, 0)] * len(curves)
    cursor = [0] * len(curves)
    merged: list[ProgressPoint] = []

    def emit() -> None:
        point = ProgressPoint(
            sum(q for q, _ in latest), sum(t for _, t in latest)
        )
        if not merged or merged[-1] != point:
            merged.append(point)

    emit()
    while True:
        best: int | None = None
        for i, curve in enumerate(curves):
            if cursor[i] >= len(curve):
                continue
            if best is None or curve[cursor[i]].queries < (
                curves[best][cursor[best]].queries
            ):
                best = i
        if best is None:
            break
        p = curves[best][cursor[best]]
        cursor[best] += 1
        latest[best] = (p.queries, p.tuples)
        emit()
    return merged


class SessionState(enum.Enum):
    """Lifecycle of one crawl session inside a :class:`ProgressAggregator`.

    A session is ``RUNNING`` until its executor marks it terminal:
    ``DONE`` when its last region finished, ``FAILED`` when a region
    crawl raised, ``CANCELLED`` when the executor abandoned it before
    it ran.  Surfacing the terminal states matters for live monitors
    and for rebalancing: a dead or cancelled worker must not look
    in-flight forever.
    """

    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """``True`` for every state except ``RUNNING``."""
        return self is not SessionState.RUNNING


class ProgressAggregator:
    """Thread-safe live view over the progress of concurrent sessions.

    Concurrent crawl sessions (see :mod:`repro.crawl.executors`) each
    report absolute per-session :class:`ProgressPoint` samples through
    :meth:`report`; the aggregator maintains the fleet-wide totals so a
    monitor thread can watch a long crawl converge.  Executors mark
    sessions terminal (:meth:`mark_done`, :meth:`mark_failed`,
    :meth:`mark_cancelled`) as workers finish or die, so
    :meth:`snapshot` distinguishes a stalled session from a dead one.
    The *live* history reflects actual scheduling and is therefore not
    deterministic across runs -- the deterministic merged curve of a
    finished crawl is computed separately by :func:`merge_progress`.
    """

    def __init__(self, sessions: int):
        if sessions < 1:
            raise ValueError("sessions must be positive")
        self._lock = threading.Lock()
        self._latest: list[ProgressPoint] = [
            ProgressPoint(0, 0) for _ in range(sessions)
        ]
        self._states: list[SessionState] = [
            SessionState.RUNNING for _ in range(sessions)
        ]
        self._history: list[ProgressPoint] = [ProgressPoint(0, 0)]

    @property
    def sessions(self) -> int:
        """Number of sessions being aggregated."""
        return len(self._latest)

    def report(self, session: int, point: ProgressPoint) -> None:
        """Record ``session``'s latest absolute (queries, tuples) sample."""
        with self._lock:
            self._latest[session] = point
            total = ProgressPoint(
                sum(p.queries for p in self._latest),
                sum(p.tuples for p in self._latest),
            )
            if self._history[-1] != total:
                self._history.append(total)

    # ------------------------------------------------------------------
    # Terminal states
    # ------------------------------------------------------------------
    def _mark(self, session: int, state: SessionState) -> None:
        with self._lock:
            current = self._states[session]
            if current is state:
                return
            if current.terminal:
                raise ValueError(
                    f"session {session} is already {current.value}; "
                    f"cannot mark it {state.value}"
                )
            self._states[session] = state

    def mark_done(self, session: int) -> None:
        """Record that ``session`` finished its whole bundle."""
        self._mark(session, SessionState.DONE)

    def mark_failed(self, session: int) -> None:
        """Record that a region crawl of ``session`` raised."""
        self._mark(session, SessionState.FAILED)

    def mark_cancelled(self, session: int) -> None:
        """Record that ``session`` was abandoned before completion."""
        self._mark(session, SessionState.CANCELLED)

    def state(self, session: int) -> SessionState:
        """The lifecycle state of one session."""
        with self._lock:
            return self._states[session]

    def states(self) -> tuple[SessionState, ...]:
        """Every session's lifecycle state, by session index."""
        with self._lock:
            return tuple(self._states)

    def active(self) -> int:
        """How many sessions are still running."""
        with self._lock:
            return sum(1 for state in self._states if not state.terminal)

    def all_terminal(self) -> bool:
        """``True`` once no session is still running."""
        return self.active() == 0

    def snapshot(self) -> list[tuple[ProgressPoint, SessionState]]:
        """A consistent per-session view: (latest sample, state).

        Unlike :meth:`history`, a snapshot shows *which* sessions are
        still moving -- a monitor can tell a slow session (running,
        counters advancing) from a ghost (failed or cancelled, counters
        frozen) and stop waiting on the latter.
        """
        with self._lock:
            return list(zip(self._latest, self._states))

    def totals(self) -> ProgressPoint:
        """The current fleet-wide (queries, tuples) total."""
        with self._lock:
            return self._history[-1]

    def history(self) -> list[ProgressPoint]:
        """A copy of the observed fleet-wide samples, in arrival order."""
        with self._lock:
            return list(self._history)

    def __repr__(self) -> str:
        with self._lock:
            total = self._history[-1]
            running = sum(1 for state in self._states if not state.terminal)
        return (
            f"ProgressAggregator({self.sessions} sessions, "
            f"{running} running, {total.queries} queries, "
            f"{total.tuples} tuples)"
        )


class Crawler(abc.ABC):
    """Base class of all crawling algorithms.

    Parameters
    ----------
    source:
        A :class:`TopKServer` (a fresh caching client is created) or a
        :class:`CachingClient` (shared cache; cost accumulates there).
    max_queries:
        Optional hard sanity cap.  Exceeding it raises
        :class:`AlgorithmInvariantError` -- tests set the cap from the
        Theorem 1 bounds so a regression that breaks a guarantee fails
        fast instead of looping.
    batteries:
        When ``True`` (default), :meth:`_run_battery` issues sibling
        queries under one client batch epoch (shared engine context,
        one lock acquisition, batched accounting).  ``False`` degrades
        every battery to a plain :meth:`_run_query` loop -- the
        reference path batteries are byte-identical to by construction
        (same calls, same order, same exception points).
    """

    #: Human-readable algorithm name; subclasses override.
    name: str = "crawler"

    def __init__(
        self,
        source: TopKServer | CachingClient,
        *,
        max_queries: int | None = None,
        batteries: bool = True,
    ):
        if isinstance(source, CachingClient):
            self._client = source
        else:
            self._client = CachingClient(source)
        self._max_queries = max_queries
        self._batteries = batteries
        self._confirmed: list[Row] = []
        self._progress: list[ProgressPoint] = []
        self._progress_listeners: list[Callable[[ProgressPoint], None]] = []
        self._queries_this_crawl = 0
        self._started = False

    # ------------------------------------------------------------------
    # Accessors for subclasses
    # ------------------------------------------------------------------
    @property
    def client(self) -> CachingClient:
        """The (possibly shared) caching client."""
        return self._client

    @property
    def space(self) -> DataSpace:
        """The data space being crawled."""
        return self._client.space

    @property
    def k(self) -> int:
        """The server's retrieval limit."""
        return self._client.k

    # ------------------------------------------------------------------
    # Template method
    # ------------------------------------------------------------------
    def crawl(self, *, allow_partial: bool = False) -> CrawlResult:
        """Extract the hidden database.

        Parameters
        ----------
        allow_partial:
            When ``True``, a :class:`QueryBudgetExhausted` from the
            server's limits produces a partial result
            (``result.complete == False``) instead of propagating.

        Raises
        ------
        InfeasibleCrawlError
            If some point provably holds more than ``k`` duplicates.
        QueryBudgetExhausted
            If a limit fires and ``allow_partial`` is ``False``.
        """
        if self._started:
            raise AlgorithmInvariantError(
                "a Crawler instance is single-use; build a new one "
                "(share the CachingClient to keep the response cache)"
            )
        self._started = True
        start_cost = self._client.cost
        self._snapshot()
        complete = True
        try:
            self._execute()
        except QueryBudgetExhausted:
            if not allow_partial:
                raise
            complete = False
        self._snapshot()
        return CrawlResult(
            algorithm=self.name,
            space=self.space,
            rows=list(self._confirmed),
            cost=self._client.cost - start_cost,
            complete=complete,
            progress=list(self._progress),
            phase_costs=dict(self._client.stats.phase_costs),
        )

    @abc.abstractmethod
    def _execute(self) -> None:
        """Run the algorithm; implemented by each concrete crawler."""

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def _run_query(self, query: Query) -> QueryResponse:
        """Issue a query through the cache, enforcing the sanity cap."""
        before = self._client.cost
        response = self._client.run(query)
        issued = self._client.cost - before
        if issued:
            self._queries_this_crawl += issued
            if (
                self._max_queries is not None
                and self._queries_this_crawl > self._max_queries
            ):
                raise AlgorithmInvariantError(
                    f"{self.name} exceeded its max_queries cap of "
                    f"{self._max_queries}"
                )
            self._snapshot()
        return response

    def _run_battery(self, queries: Sequence[Query]) -> list[QueryResponse]:
        """Issue sibling queries through one client batch epoch.

        The battery is exactly ``[self._run_query(q) for q in
        queries]`` -- per-query cache probes, admission order, cost
        deltas, progress snapshots, sanity-cap checks and exception
        points are untouched, so a mid-battery budget refusal raises at
        the identical query index either way -- but under one
        :meth:`~repro.server.client.CachingClient.batch` epoch the
        misses share the server's engine context and the accounting
        merges once at the boundary.  With ``batteries=False`` (or a
        degenerate battery) the epoch is skipped entirely, which is the
        reference loop the parity property tests compare against.
        """
        if not self._batteries or len(queries) < 2:
            return [self._run_query(query) for query in queries]
        with self._client.batch():
            return [self._run_query(query) for query in queries]

    def _confirm(self, rows) -> None:
        """Record tuples extracted with certainty (resolved coverage)."""
        self._confirmed.extend(rows)
        self._snapshot()

    def add_progress_listener(
        self, listener: Callable[[ProgressPoint], None]
    ) -> None:
        """Invoke ``listener`` with every new progress sample.

        Works with any concrete crawler regardless of its constructor
        signature, which is how the parallel executor threads a
        :class:`ProgressAggregator` through arbitrary
        ``crawler_factory`` callables.
        """
        self._progress_listeners.append(listener)

    def _snapshot(self) -> None:
        point = ProgressPoint(self._queries_this_crawl, len(self._confirmed))
        if not self._progress or self._progress[-1] != point:
            self._progress.append(point)
            for listener in self._progress_listeners:
                listener(point)
