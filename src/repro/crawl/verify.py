"""Crawl verification: did we really extract the entire bag?

Problem 1 demands the *entire* hidden bag ``D`` -- duplicates included.
:func:`verify_complete` compares a crawl result against the ground-truth
dataset with multiset semantics and reports exactly what is missing or
spurious; every test in the suite funnels through it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.crawl.base import CrawlResult
from repro.dataspace.dataset import Dataset
from repro.server.response import Row

__all__ = ["VerificationReport", "verify_complete", "assert_complete"]


@dataclass
class VerificationReport:
    """Outcome of checking a crawl result against the ground truth."""

    complete: bool
    expected: int
    extracted: int
    #: Tuples of the hidden bag the crawl failed to produce (with counts).
    missing: Counter[Row] = field(default_factory=Counter)
    #: Tuples the crawl produced too often / that do not exist (with counts).
    spurious: Counter[Row] = field(default_factory=Counter)

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.complete:
            return (
                f"complete: all {self.expected} tuples extracted exactly once"
            )
        return (
            f"INCOMPLETE: expected {self.expected}, extracted "
            f"{self.extracted}; {sum(self.missing.values())} missing, "
            f"{sum(self.spurious.values())} spurious"
        )


def verify_complete(
    result: CrawlResult, dataset: Dataset
) -> VerificationReport:
    """Compare a crawl result with the hidden dataset, bag-to-bag."""
    truth = dataset.multiset()
    got: Counter[Row] = Counter(result.rows)
    missing = truth - got
    spurious = got - truth
    return VerificationReport(
        complete=not missing and not spurious,
        expected=dataset.n,
        extracted=len(result.rows),
        missing=missing,
        spurious=spurious,
    )


def assert_complete(result: CrawlResult, dataset: Dataset) -> None:
    """Raise ``AssertionError`` with a diagnostic if the crawl is not exact."""
    report = verify_complete(result, dataset)
    if not report.complete:
        examples_missing = list(report.missing.items())[:5]
        examples_spurious = list(report.spurious.items())[:5]
        raise AssertionError(
            f"{report.summary()}\n  missing (first 5): {examples_missing}"
            f"\n  spurious (first 5): {examples_spurious}"
        )
