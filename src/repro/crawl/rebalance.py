"""Adaptive rebalancing: work stealing over a partition plan's regions.

A static :class:`~repro.crawl.partition.PartitionPlan` fixes which
session crawls which regions before anything about the data is known,
so the slowest session dominates the wall clock.  This module provides
the scheduling layer that fixes that without touching the result:

* :class:`CostEstimator` -- per-region query-cost estimates, updated
  from the observed cost of every finished region (each region's cost
  is the exact :class:`~repro.server.stats.QueryStats`-backed query
  count of its crawl) and seedable with priors from a previous crawl's
  stats;
* :class:`WorkStealingScheduler` -- a thread-safe work queue per
  session; an idle worker first drains its own session's queue in plan
  order, then *steals* the tail region of the session with the largest
  estimated remaining cost.

Stealing never changes what is crawled, only *when* and *by which
worker*: a stolen region is still crawled against its own session's
source (its identity keeps paying the queries), and the executors file
every region's result under its original plan position, so the merged
:class:`~repro.crawl.partition.PartitionedResult` stays byte-identical
to the sequential executor's.  The scheduler's accounting is exact:
every region is handed out at most once, and the observed total cost
equals the sum of the per-region costs no matter how acquisitions and
completions interleave (a hypothesis property test drives arbitrary
schedules through it).
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Mapping
from dataclasses import dataclass

from repro.exceptions import AlgorithmInvariantError
from repro.query.query import Query
from repro.server.stats import QueryStats

__all__ = ["RegionTask", "CostEstimator", "WorkStealingScheduler"]

#: A region's identity inside a plan: (session index, index in bundle).
RegionKey = tuple[int, int]


@dataclass(frozen=True)
class RegionTask:
    """One schedulable unit of work: a region at its plan position."""

    session: int
    index: int
    region: Query

    @property
    def key(self) -> RegionKey:
        """The region's (session, index) position in the plan."""
        return (self.session, self.index)


class CostEstimator:
    """Per-region query-cost estimates for scheduling decisions.

    The estimate for a region is, in order of preference: its *observed*
    cost (once its crawl finished), a caller-supplied prior, the running
    mean of all observed costs so far, and finally a flat default prior.
    All methods are thread-safe.

    Parameters
    ----------
    prior:
        The flat default estimate used before anything is observed.
    priors:
        Optional per-region priors keyed by (session, index) -- e.g. the
        measured costs of a previous crawl of the same plan.
    """

    def __init__(
        self,
        *,
        prior: float = 1.0,
        priors: Mapping[RegionKey, float] | None = None,
    ):
        if prior <= 0:
            raise ValueError(f"prior must be positive, got {prior}")
        self._prior = float(prior)
        self._priors = dict(priors or {})
        self._observed: dict[RegionKey, int] = {}
        # Running sum of observed costs, so the fallback mean is O(1);
        # plans can have tens of thousands of regions (one per value of
        # a large categorical domain) and estimates sit on hot paths.
        self._observed_sum = 0
        self._lock = threading.Lock()

    @classmethod
    def from_stats(cls, stats: QueryStats, regions: int) -> "CostEstimator":
        """Seed the default prior from a previous crawl's query stats.

        ``stats.queries / regions`` -- the mean observed per-region cost
        of an earlier run over a comparable plan -- becomes the flat
        prior, so the first stealing decisions of a re-crawl start from
        measured reality instead of a guess.
        """
        mean = stats.queries / max(1, regions)
        return cls(prior=max(1.0, mean))

    def record(self, key: RegionKey, cost: int) -> None:
        """Record the exact observed cost of a finished region."""
        with self._lock:
            previous = self._observed.get(key)
            if previous is not None:
                self._observed_sum -= previous
            self._observed[key] = int(cost)
            self._observed_sum += int(cost)

    def estimate(self, key: RegionKey) -> float:
        """The current cost estimate for the region at ``key``."""
        with self._lock:
            if key in self._observed:
                return float(self._observed[key])
            if key in self._priors:
                return float(self._priors[key])
            if self._observed:
                return self._observed_sum / len(self._observed)
            return self._prior

    def observed(self) -> dict[RegionKey, int]:
        """A copy of the observed per-region costs."""
        with self._lock:
            return dict(self._observed)

    def total_observed(self) -> int:
        """Sum of all observed region costs."""
        with self._lock:
            return self._observed_sum

    def __repr__(self) -> str:
        with self._lock:
            observed = len(self._observed)
        return f"CostEstimator({observed} regions observed)"


class WorkStealingScheduler:
    """Thread-safe region scheduler with estimate-guided stealing.

    One FIFO queue per session holds the session's regions in plan
    order.  :meth:`acquire` serves a worker from its home session's
    queue first; when that queue is empty the worker steals the *tail*
    region of the victim with the largest estimated remaining queued
    cost -- splitting remaining work off the (estimated) slowest
    session, with ties broken by the lowest session index.

    Accounting invariants, enforced and exposed for tests:

    * a region is handed out at most once (acquire pops it);
    * :meth:`complete` and :meth:`fail` accept only regions currently
      in flight, so double completion is impossible;
    * when everything has drained, :meth:`total_observed_cost` equals
      the exact sum of the per-region costs reported to
      :meth:`complete`.
    """

    #: Exact per-queue estimate refreshes are skipped above this many
    #: queued regions: a plan can hold tens of thousands of regions
    #: (one per value of a large categorical domain), and an O(queued)
    #: walk per completion would dominate the crawl.  Beyond the limit
    #: the cached enqueue-time estimates stand in, which for a flat
    #: prior makes the victim simply the session with the most queued
    #: regions -- still the right coarse signal.
    _REFRESH_LIMIT = 512

    def __init__(self, bundles, estimator: CostEstimator | None = None):
        self.estimator = (
            estimator if estimator is not None else CostEstimator()
        )
        self._queues: list[deque[RegionTask]] = [
            deque(
                RegionTask(session, index, region)
                for index, region in enumerate(bundle)
            )
            for session, bundle in enumerate(bundles)
        ]
        self._total = sum(len(q) for q in self._queues)
        self._in_flight: dict[RegionKey, int | None] = {}
        self._completed: dict[RegionKey, int] = {}
        self._failed: set[RegionKey] = set()
        self._steals: list[tuple[RegionKey, int | None]] = []
        self._lock = threading.Lock()
        # Per-session sums of the queued tasks' cached estimates, kept
        # incrementally so picking a victim is O(sessions) per acquire.
        self._cached_estimate: dict[RegionKey, float] = {}
        self._queued_cost: list[float] = []
        for queue in self._queues:
            total = 0.0
            for task in queue:
                value = self.estimator.estimate(task.key)
                self._cached_estimate[task.key] = value
                total += value
            self._queued_cost.append(total)

    @property
    def sessions(self) -> int:
        """Number of per-session queues."""
        return len(self._queues)

    @property
    def total_tasks(self) -> int:
        """Number of regions the scheduler was built with."""
        return self._total

    def acquire(self, worker_session: int | None = None) -> RegionTask | None:
        """Hand out the next region for a worker, or ``None`` when dry.

        ``worker_session`` is the worker's home session: its own queue
        is drained first (in plan order); afterwards the worker steals.
        ``None`` means the caller has no home queue (e.g. the process
        backend's parent-side dispatcher) and always picks by estimate.
        """
        with self._lock:
            if worker_session is not None and (
                0 <= worker_session < len(self._queues)
            ):
                own = self._queues[worker_session]
                if own:
                    task = own.popleft()
                    self._dequeued(task)
                    self._in_flight[task.key] = worker_session
                    return task
            victim = self._pick_victim()
            if victim is None:
                return None
            task = self._queues[victim].pop()
            self._dequeued(task)
            self._in_flight[task.key] = worker_session
            if worker_session is None or victim != worker_session:
                self._steals.append((task.key, worker_session))
            return task

    def _dequeued(self, task: RegionTask) -> None:
        # Caller holds self._lock.
        value = self._cached_estimate.pop(task.key, 0.0)
        session_cost = self._queued_cost[task.session] - value
        self._queued_cost[task.session] = max(0.0, session_cost)

    def _pick_victim(self) -> int | None:
        # Caller holds self._lock.
        best: int | None = None
        best_cost = -1.0
        for session, queue in enumerate(self._queues):
            if queue and self._queued_cost[session] > best_cost:
                best, best_cost = session, self._queued_cost[session]
        return best

    def _refresh_estimates(self) -> None:
        # Caller holds self._lock.  Exact refresh of the cached sums;
        # skipped on huge queues (see _REFRESH_LIMIT).
        if len(self._cached_estimate) > self._REFRESH_LIMIT:
            return
        for session, queue in enumerate(self._queues):
            total = 0.0
            for task in queue:
                value = self.estimator.estimate(task.key)
                self._cached_estimate[task.key] = value
                total += value
            self._queued_cost[session] = total

    def complete(self, task: RegionTask, cost: int) -> None:
        """Mark an in-flight region finished with its exact query cost."""
        with self._lock:
            self._check_in_flight(task)
            del self._in_flight[task.key]
            self._completed[task.key] = int(cost)
        self.estimator.record(task.key, int(cost))
        with self._lock:
            self._refresh_estimates()

    def fail(self, task: RegionTask) -> None:
        """Mark an in-flight region as failed (its worker died on it)."""
        with self._lock:
            self._check_in_flight(task)
            del self._in_flight[task.key]
            self._failed.add(task.key)

    def _check_in_flight(self, task: RegionTask) -> None:
        # Caller holds self._lock.
        if task.key not in self._in_flight:
            raise AlgorithmInvariantError(
                f"region {task.key} is not in flight; a scheduler task "
                "may only be completed or failed once, by its acquirer"
            )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def remaining(self) -> int:
        """Regions not yet completed or failed (queued + in flight)."""
        with self._lock:
            queued = sum(len(q) for q in self._queues)
            return queued + len(self._in_flight)

    def done(self) -> bool:
        """``True`` once every region has completed or failed."""
        return self.remaining() == 0

    def completed_costs(self) -> dict[RegionKey, int]:
        """Exact observed cost per completed region."""
        with self._lock:
            return dict(self._completed)

    def failed_keys(self) -> set[RegionKey]:
        """Plan positions of regions whose crawl raised."""
        with self._lock:
            return set(self._failed)

    def total_observed_cost(self) -> int:
        """Sum of the completed regions' costs -- exact, by construction."""
        with self._lock:
            return sum(self._completed.values())

    def steals(self) -> list[tuple[RegionKey, int | None]]:
        """Every steal that happened: (region key, thief's session)."""
        with self._lock:
            return list(self._steals)

    def __repr__(self) -> str:
        with self._lock:
            queued = sum(len(q) for q in self._queues)
            return (
                f"WorkStealingScheduler({self._total} regions: "
                f"{queued} queued, {len(self._in_flight)} in flight, "
                f"{len(self._completed)} done, {len(self._failed)} failed, "
                f"{len(self._steals)} steals)"
            )
