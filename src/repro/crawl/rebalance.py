"""Adaptive rebalancing: work stealing over a partition plan's regions.

A static :class:`~repro.crawl.partition.PartitionPlan` fixes which
session crawls which regions before anything about the data is known,
so the slowest session dominates the wall clock.  This module provides
the scheduling layer that fixes that without touching the result:

* :class:`CostEstimator` -- per-region query-cost estimates, updated
  from the observed cost of every finished region (each region's cost
  is the exact :class:`~repro.server.stats.QueryStats`-backed query
  count of its crawl) and seedable with priors from a previous crawl's
  stats;
* :class:`WorkStealingScheduler` -- a thread-safe work queue per
  session; an idle worker first drains its own session's queue in plan
  order, then *steals* the tail region of the session with the largest
  estimated remaining cost.

Stealing never changes what is crawled, only *when* and *by which
worker*: a stolen region is still crawled against its own session's
source (its identity keeps paying the queries), and the executors file
every region's result under its original plan position, so the merged
:class:`~repro.crawl.partition.PartitionedResult` stays byte-identical
to the sequential executor's.  The scheduler's accounting is exact:
every region is handed out at most once, and the observed total cost
equals the sum of the per-region costs no matter how acquisitions and
completions interleave (a hypothesis property test drives arbitrary
schedules through it).

:class:`SubtreeScheduler` adds the second level introduced with
subtree sharding (:mod:`repro.crawl.sharding`): when no whole region is
left to take, an idle worker steals a *subquery* of a live region --
the next pending subtree shard of the region with the largest estimated
remaining cost.  Shard results carry their exact per-shard cost back to
the :class:`CostEstimator` (:meth:`CostEstimator.record_shard`), so the
"costliest live region" signal sharpens as the region progresses.  The
same invariants hold one level down: each shard is handed out at most
once, filed at its canonical position, and merged deterministically.

Both schedulers are *elastic*: a worker that leaves a running crawl
(:class:`~repro.exceptions.WorkerDeparted`) hands its acquired region
or shard back via ``requeue()`` -- the unit returns to the front of its
home queue, any surviving or newly joined worker picks it up, and the
exactly-once accounting is untouched.  Both also accept a ``completed``
map of pre-crawled region costs (a resumed crawl's checkpoint), which
enter the books as done without ever being enqueued.
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Mapping
from dataclasses import dataclass

from repro.exceptions import AlgorithmInvariantError
from repro.query.query import Query
from repro.server.stats import QueryStats

__all__ = [
    "RegionTask",
    "ShardTask",
    "RegionCompletion",
    "CostEstimator",
    "WorkStealingScheduler",
    "SubtreeScheduler",
]

#: A region's identity inside a plan: (session index, index in bundle).
RegionKey = tuple[int, int]


@dataclass(frozen=True)
class RegionTask:
    """One schedulable unit of work: a region at its plan position."""

    session: int
    index: int
    region: Query

    @property
    def key(self) -> RegionKey:
        """The region's (session, index) position in the plan."""
        return (self.session, self.index)

    @property
    def live_key(self) -> tuple:
        """Uniquely identifies this unit in live-progress bookkeeping."""
        return ("region", self.index)


@dataclass(frozen=True)
class ShardTask:
    """One schedulable subtree shard of a live region.

    Produced by :class:`SubtreeScheduler` after a region's
    :class:`~repro.crawl.sharding.RegionShardPlan` is published; the
    shard is crawled against *its own session's* source (the session's
    identity keeps paying the queries) and its result is filed at the
    shard's canonical position, so stealing subtrees changes wall-clock
    behaviour only, never the merged result.
    """

    session: int
    index: int
    region: Query
    shard: object  # a repro.crawl.sharding.SubtreeShard

    @property
    def key(self) -> RegionKey:
        """The owning region's (session, index) plan position."""
        return (self.session, self.index)

    @property
    def live_key(self) -> tuple:
        """Uniquely identifies this unit in live-progress bookkeeping."""
        return ("shard", self.index, self.shard.order)


class CostEstimator:
    """Per-region query-cost estimates for scheduling decisions.

    The estimate for a region is, in order of preference: its *observed*
    cost (once its crawl finished), a caller-supplied prior, the running
    mean of all observed costs so far, and finally a flat default prior.
    All methods are thread-safe.

    Parameters
    ----------
    prior:
        The flat default estimate used before anything is observed.
    priors:
        Optional per-region priors keyed by (session, index) -- e.g. the
        measured costs of a previous crawl of the same plan.
    """

    def __init__(
        self,
        *,
        prior: float = 1.0,
        priors: Mapping[RegionKey, float] | None = None,
    ):
        if prior <= 0:
            raise ValueError(f"prior must be positive, got {prior}")
        self._prior = float(prior)
        self._priors = dict(priors or {})
        self._observed: dict[RegionKey, int] = {}
        # Running sum of observed costs, so the fallback mean is O(1);
        # plans can have tens of thousands of regions (one per value of
        # a large categorical domain) and estimates sit on hot paths.
        self._observed_sum = 0
        # Exact per-shard feedback for *live* regions: (cost sum, shard
        # count) per region, fed by the subtree-sharding executors.
        self._shard_observed: dict[RegionKey, tuple[int, int]] = {}
        self._lock = threading.Lock()

    @classmethod
    def from_stats(cls, stats: QueryStats, regions: int) -> "CostEstimator":
        """Seed the default prior from a previous crawl's query stats.

        ``stats.queries / regions`` -- the mean observed per-region cost
        of an earlier run over a comparable plan -- becomes the flat
        prior, so the first stealing decisions of a re-crawl start from
        measured reality instead of a guess.
        """
        mean = stats.queries / max(1, regions)
        return cls(prior=max(1.0, mean))

    def record(self, key: RegionKey, cost: int) -> None:
        """Record the exact observed cost of a finished region.

        Supersedes any partial per-shard view of the region
        (:meth:`record_shard`): the shard tally is dropped, so an
        estimator reused across crawls never feeds a stale shard mean
        into the next crawl's steal decisions.
        """
        with self._lock:
            previous = self._observed.get(key)
            if previous is not None:
                self._observed_sum -= previous
            self._observed[key] = int(cost)
            self._observed_sum += int(cost)
            self._shard_observed.pop(key, None)

    def estimate(self, key: RegionKey) -> float:
        """The current cost estimate for the region at ``key``."""
        with self._lock:
            if key in self._observed:
                return float(self._observed[key])
            if key in self._priors:
                return float(self._priors[key])
            if self._observed:
                return self._observed_sum / len(self._observed)
            return self._prior

    def record_shard(self, key: RegionKey, cost: int) -> None:
        """Fold one subtree shard's exact cost into a live region.

        Called by the subtree-sharding executors as each shard of the
        region at ``key`` finishes, so stealing decisions about the
        *rest* of that region's shards rest on measured shard costs
        (see :meth:`shard_mean`) instead of a whole-region prior.  Once
        the region completes, :meth:`record` supersedes this partial
        view with the exact merged total.
        """
        with self._lock:
            total, count = self._shard_observed.get(key, (0, 0))
            self._shard_observed[key] = (total + int(cost), count + 1)

    def shard_mean(self, key: RegionKey) -> float | None:
        """Mean observed shard cost of a live region, if any finished."""
        with self._lock:
            total, count = self._shard_observed.get(key, (0, 0))
            if count == 0:
                return None
            return total / count

    def shard_observed(self, key: RegionKey) -> tuple[int, int]:
        """(cost sum, shard count) recorded so far for a live region."""
        with self._lock:
            return self._shard_observed.get(key, (0, 0))

    def observed(self) -> dict[RegionKey, int]:
        """A copy of the observed per-region costs."""
        with self._lock:
            return dict(self._observed)

    def export_state(self) -> dict:
        """Constructor kwargs reproducing this estimator's knowledge.

        Used by the cross-process mode: a scheduler hosted in the
        coordinator process cannot receive the caller's estimator
        object (it holds a lock), so it is rebuilt there from this
        snapshot -- the flat prior plus every per-region prior and
        observed cost, the latter folded into ``priors`` so the remote
        twin starts from measured reality.
        """
        with self._lock:
            priors = dict(self._priors)
            priors.update(
                (key, float(cost)) for key, cost in self._observed.items()
            )
            return {"prior": self._prior, "priors": priors}

    def total_observed(self) -> int:
        """Sum of all observed region costs."""
        with self._lock:
            return self._observed_sum

    def __repr__(self) -> str:
        with self._lock:
            observed = len(self._observed)
        return f"CostEstimator({observed} regions observed)"


class WorkStealingScheduler:
    """Thread-safe region scheduler with estimate-guided stealing.

    One FIFO queue per session holds the session's regions in plan
    order.  :meth:`acquire` serves a worker from its home session's
    queue first; when that queue is empty the worker steals the *tail*
    region of the victim with the largest estimated remaining queued
    cost -- splitting remaining work off the (estimated) slowest
    session, with ties broken by the lowest session index.

    Accounting invariants, enforced and exposed for tests:

    * a region is handed out at most once (acquire pops it);
    * :meth:`complete` and :meth:`fail` accept only regions currently
      in flight, so double completion is impossible;
    * when everything has drained, :meth:`total_observed_cost` equals
      the exact sum of the per-region costs reported to
      :meth:`complete`.

    Examples
    --------
    The worker protocol is acquire -> crawl -> complete (executors run
    one such loop per worker)::

        scheduler = WorkStealingScheduler(plan.bundles)
        while (task := scheduler.acquire(home_session)) is not None:
            result = crawl_the_region(task)     # any worker, any time
            scheduler.complete(task, result.cost)
        assert scheduler.done()
    """

    #: Exact per-queue estimate refreshes are skipped above this many
    #: queued regions: a plan can hold tens of thousands of regions
    #: (one per value of a large categorical domain), and an O(queued)
    #: walk per completion would dominate the crawl.  Beyond the limit
    #: the cached enqueue-time estimates stand in, which for a flat
    #: prior makes the victim simply the session with the most queued
    #: regions -- still the right coarse signal.
    _REFRESH_LIMIT = 512

    def __init__(
        self,
        bundles,
        estimator: CostEstimator | None = None,
        completed: Mapping[RegionKey, int] | None = None,
    ):
        self.estimator = (
            estimator if estimator is not None else CostEstimator()
        )
        # Resume support: regions already crawled (e.g. restored from a
        # CrawlCheckpoint) are never enqueued -- they enter the books as
        # completed with their exact recorded costs, and the estimator
        # learns them up front so the first stealing decisions of the
        # resumed crawl start from measured reality.
        self._completed: dict[RegionKey, int] = {
            key: int(cost) for key, cost in dict(completed or {}).items()
        }
        for key, cost in self._completed.items():
            self.estimator.record(key, cost)
        self._queues: list[deque[RegionTask]] = [
            deque(
                RegionTask(session, index, region)
                for index, region in enumerate(bundle)
                if (session, index) not in self._completed
            )
            for session, bundle in enumerate(bundles)
        ]
        self._total = sum(len(q) for q in self._queues)
        self._in_flight: dict[RegionKey, int | None] = {}
        self._failed: set[RegionKey] = set()
        self._aborted = False
        self._steals: list[tuple[RegionKey, int | None]] = []
        self._lock = threading.Lock()
        # Per-session sums of the queued tasks' cached estimates, kept
        # incrementally so picking a victim is O(sessions) per acquire.
        self._cached_estimate: dict[RegionKey, float] = {}
        self._queued_cost: list[float] = []
        for queue in self._queues:
            total = 0.0
            for task in queue:
                value = self.estimator.estimate(task.key)
                self._cached_estimate[task.key] = value
                total += value
            self._queued_cost.append(total)

    @property
    def sessions(self) -> int:
        """Number of per-session queues."""
        return len(self._queues)

    @property
    def total_tasks(self) -> int:
        """Number of schedulable regions (pre-completed ones excluded)."""
        return self._total

    def acquire(
        self, worker_session: int | None = None, *, block: bool = True
    ) -> RegionTask | None:
        """Hand out the next region for a worker, or ``None`` when dry.

        ``worker_session`` is the worker's home session: its own queue
        is drained first (in plan order); afterwards the worker steals.
        ``None`` means the caller has no home queue (e.g. the process
        backend's parent-side dispatcher) and always picks by estimate.
        ``block`` is accepted for signature parity with
        :meth:`SubtreeScheduler.acquire` (the runtime's futures
        dispatcher polls either scheduler the same way); this one-level
        scheduler never blocks, so the flag changes nothing.
        """
        with self._lock:
            if self._aborted:
                return None
            return self._acquire_region_locked(worker_session)

    def _acquire_region_locked(
        self, worker_session: int | None
    ) -> RegionTask | None:
        # Caller holds self._lock.
        if worker_session is not None and (
            0 <= worker_session < len(self._queues)
        ):
            own = self._queues[worker_session]
            if own:
                task = own.popleft()
                self._dequeued(task)
                self._in_flight[task.key] = worker_session
                return task
        victim = self._pick_victim()
        if victim is None:
            return None
        task = self._queues[victim].pop()
        self._dequeued(task)
        self._in_flight[task.key] = worker_session
        if worker_session is None or victim != worker_session:
            self._steals.append((task.key, worker_session))
        return task

    def _dequeued(self, task: RegionTask) -> None:
        # Caller holds self._lock.
        value = self._cached_estimate.pop(task.key, 0.0)
        session_cost = self._queued_cost[task.session] - value
        self._queued_cost[task.session] = max(0.0, session_cost)

    def _pick_victim(self) -> int | None:
        # Caller holds self._lock.
        best: int | None = None
        best_cost = -1.0
        for session, queue in enumerate(self._queues):
            if queue and self._queued_cost[session] > best_cost:
                best, best_cost = session, self._queued_cost[session]
        return best

    def _refresh_estimates(self) -> None:
        # Caller holds self._lock.  Exact refresh of the cached sums;
        # skipped on huge queues (see _REFRESH_LIMIT).
        if len(self._cached_estimate) > self._REFRESH_LIMIT:
            return
        for session, queue in enumerate(self._queues):
            total = 0.0
            for task in queue:
                value = self.estimator.estimate(task.key)
                self._cached_estimate[task.key] = value
                total += value
            self._queued_cost[session] = total

    def complete(self, task: RegionTask, cost: int) -> None:
        """Mark an in-flight region finished with its exact query cost.

        After :meth:`abort` the call degrades to a no-op for tasks the
        abort already wrote off -- a surviving worker reporting a
        result it was mid-crawl on must drain quietly, not crash.
        """
        with self._lock:
            if not self._check_in_flight(task):
                return
            del self._in_flight[task.key]
            self._completed[task.key] = int(cost)
        self.estimator.record(task.key, int(cost))
        with self._lock:
            self._refresh_estimates()

    def fail(self, task: RegionTask) -> None:
        """Mark an in-flight region as failed (its worker died on it)."""
        with self._lock:
            if not self._check_in_flight(task):
                return
            del self._in_flight[task.key]
            self._failed.add(task.key)

    def requeue(self, task: RegionTask) -> bool:
        """Return an in-flight region to the *front* of its home queue.

        The departed-worker contract: when a worker leaves a running
        crawl (:class:`~repro.exceptions.WorkerDeparted`), its acquired
        unit goes back to the scheduler instead of failing the session
        -- any surviving (or newly joined) worker picks it up next, and
        the crawl completes with full parity.  The task returns to the
        front of its own session's queue so plan order is preserved for
        that session's next acquirer.  Returns ``False`` (and drops the
        task silently) when an abort already wrote the task off; raises
        :class:`~repro.exceptions.AlgorithmInvariantError` if the task
        was never in flight -- only an acquirer may hand work back.

        Examples
        --------
        ::

            task = scheduler.acquire(0)
            scheduler.requeue(task)            # the worker departed
            assert scheduler.acquire(0) == task  # another worker resumes
        """
        with self._lock:
            return self._requeue_locked(task)

    def _requeue_locked(self, task: RegionTask) -> bool:
        # Caller holds self._lock.
        if task.key not in self._in_flight:
            if self._aborted:
                return False
            raise AlgorithmInvariantError(
                f"region {task.key} is not in flight; only its acquirer "
                "may requeue it"
            )
        del self._in_flight[task.key]
        self._queues[task.session].appendleft(task)
        value = self.estimator.estimate(task.key)
        self._cached_estimate[task.key] = value
        self._queued_cost[task.session] += value
        return True

    def _check_in_flight(self, task: RegionTask) -> bool:
        # Caller holds self._lock.  Returns False when the task should
        # be silently dropped (an abort wrote it off while its worker
        # was still crawling); raises on a genuine protocol violation.
        if task.key in self._in_flight:
            return True
        if self._aborted:
            return False
        raise AlgorithmInvariantError(
            f"region {task.key} is not in flight; a scheduler task "
            "may only be completed or failed once, by its acquirer"
        )

    def abort(self) -> None:
        """Discard all unfinished work so every worker drains out.

        The escape hatch for irrecoverable worker loss (a pool process
        dying without reporting back, which would otherwise leave its
        in-flight task blocking the drain forever): queued and
        in-flight regions are marked failed, and subsequent
        :meth:`acquire` calls return ``None``.  Completed regions keep
        their exact recorded costs, and surviving workers that report
        an aborted task afterwards are drained silently instead of
        tripping the exactly-once check.

        Idempotent and safe against concurrent workers: abort-on-abort
        is a no-op (the shared-limit drain calls it once per dead
        worker), and a worker racing :meth:`acquire` either gets a task
        the abort writes off or observes the aborted state and drains.

        Examples
        --------
        ::

            task = scheduler.acquire(0)
            scheduler.abort()
            scheduler.abort()               # no-op, still aborted
            scheduler.complete(task, 5)     # silently dropped
            assert scheduler.acquire(0) is None
        """
        with self._lock:
            if self._aborted:
                return
            self._abort_locked()

    def _abort_locked(self) -> None:
        # Caller holds self._lock.
        self._aborted = True
        for queue in self._queues:
            while queue:
                self._failed.add(queue.pop().key)
        self._failed.update(self._in_flight)
        self._in_flight.clear()
        self._cached_estimate.clear()
        self._queued_cost = [0.0] * len(self._queues)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def remaining(self) -> int:
        """Regions not yet completed or failed (queued + in flight)."""
        with self._lock:
            queued = sum(len(q) for q in self._queues)
            return queued + len(self._in_flight)

    def done(self) -> bool:
        """``True`` once every region has completed or failed."""
        return self.remaining() == 0

    def completed_costs(self) -> dict[RegionKey, int]:
        """Exact observed cost per completed region."""
        with self._lock:
            return dict(self._completed)

    def failed_keys(self) -> set[RegionKey]:
        """Plan positions of regions whose crawl raised."""
        with self._lock:
            return set(self._failed)

    def total_observed_cost(self) -> int:
        """Sum of the completed regions' costs -- exact, by construction."""
        with self._lock:
            return sum(self._completed.values())

    def steals(self) -> list[tuple[RegionKey, int | None]]:
        """Every steal that happened: (region key, thief's session)."""
        with self._lock:
            return list(self._steals)

    def __repr__(self) -> str:
        with self._lock:
            queued = sum(len(q) for q in self._queues)
            return (
                f"WorkStealingScheduler({self._total} regions: "
                f"{queued} queued, {len(self._in_flight)} in flight, "
                f"{len(self._completed)} done, {len(self._failed)} failed, "
                f"{len(self._steals)} steals)"
            )


class _LiveRegion:
    """A region whose shard plan is published but not yet merged."""

    __slots__ = ("task", "plan", "pending", "in_flight", "results", "failed")

    def __init__(self, task: RegionTask, plan, pending):
        self.task = task
        self.plan = plan
        self.pending = pending
        self.in_flight = 0
        self.results: dict[int, object] = {}
        self.failed = False


@dataclass(frozen=True)
class RegionCompletion:
    """Everything needed to merge a finished region's shard results.

    Returned by :meth:`SubtreeScheduler.publish` (zero-shard plans) and
    :meth:`SubtreeScheduler.complete_shard` (when the last shard of a
    region lands).  Exactly one worker receives it; that worker calls
    :func:`~repro.crawl.sharding.merge_region_shards` and then reports
    the merged cost via :meth:`SubtreeScheduler.complete_region`.
    """

    task: RegionTask
    plan: object  # a repro.crawl.sharding.RegionShardPlan
    results: tuple  # shard CrawlResults in canonical shard order


class SubtreeScheduler(WorkStealingScheduler):
    """Two-level work stealing: whole regions first, then subtrees.

    The region layer behaves exactly like
    :class:`WorkStealingScheduler`: a worker drains its home session's
    queue in plan order, then steals the tail region of the costliest
    session.  Acquiring a region means *presplitting* it
    (:func:`~repro.crawl.sharding.presplit_region`); the resulting plan
    is handed back via :meth:`publish`, which turns the region *live*
    and exposes its subtree shards.  Only when no whole region is left
    to take does a worker fall through to the subtree layer and steal
    the next shard of the **costliest live region** -- the region with
    the largest estimated remaining shard cost, measured from the exact
    costs of its already-finished shards
    (:meth:`CostEstimator.record_shard`) and falling back to the
    region-level estimate divided by its shard count.

    :meth:`acquire` blocks while work may still appear (a presplit in
    flight can publish new shards); it returns ``None`` only when every
    region has been merged or failed.  Pass ``block=False`` for a
    non-blocking poll (the process backend's parent-side dispatcher).
    """

    def __init__(
        self,
        bundles,
        estimator: CostEstimator | None = None,
        completed: Mapping[RegionKey, int] | None = None,
    ):
        super().__init__(bundles, estimator, completed)
        self._cond = threading.Condition(self._lock)
        self._live: dict[RegionKey, _LiveRegion] = {}
        self._merging: set[RegionKey] = set()

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------
    def acquire(
        self, worker_session: int | None = None, *, block: bool = True
    ) -> RegionTask | ShardTask | None:
        """The next region or shard for a worker; ``None`` when done.

        Preference order: the worker's own region queue, then a stolen
        whole region, then a shard of the costliest live region.  With
        ``block=True`` (workers) the call waits whenever the queues are
        momentarily empty but presplits in flight may still publish
        shards; with ``block=False`` (a dispatcher polling from its own
        thread) it returns ``None`` immediately in that situation.
        """
        with self._cond:
            while True:
                # The fast path out for workers woken by (or racing) an
                # abort: everything is written off, so return without
                # consulting the queue state -- a waiter blocked in
                # wait() is guaranteed to observe this on wake-up.
                if self._aborted:
                    return None
                task = self._acquire_region_locked(worker_session)
                if task is not None:
                    return task
                shard = self._acquire_shard_locked(worker_session)
                if shard is not None:
                    return shard
                if self._drained_locked() or not block:
                    return None
                self._cond.wait()

    def _acquire_shard_locked(
        self, worker_session: int | None
    ) -> ShardTask | None:
        # Caller holds self._lock.  Victim: largest estimated remaining
        # shard cost; ties broken by the lowest region key.
        best_key: RegionKey | None = None
        best_score = -1.0
        for key, live in self._live.items():
            if live.failed or not live.pending:
                continue
            mean = self.estimator.shard_mean(key)
            if mean is None:
                mean = self.estimator.estimate(key) / max(
                    1, len(live.plan.shards)
                )
            score = mean * len(live.pending)
            if (
                best_key is None
                or score > best_score
                or (score == best_score and key < best_key)
            ):
                best_key, best_score = key, score
        if best_key is None:
            return None
        live = self._live[best_key]
        task = live.pending.popleft()
        live.in_flight += 1
        if worker_session is None or best_key[0] != worker_session:
            self._steals.append((best_key, worker_session))
        return task

    def _drained_locked(self) -> bool:
        # Caller holds self._lock.
        if any(self._queues):
            return False
        return not (self._in_flight or self._live or self._merging)

    # ------------------------------------------------------------------
    # Region lifecycle
    # ------------------------------------------------------------------
    def publish(self, task: RegionTask, plan) -> RegionCompletion | None:
        """File a presplit region's shard plan and expose its shards.

        Returns a :class:`RegionCompletion` immediately when the plan
        carries no shards (the trunk was the whole crawl) -- the caller
        then merges and reports via :meth:`complete_region` as usual.
        """
        with self._cond:
            if task.key not in self._in_flight:
                if self._aborted:
                    return None  # written off mid-presplit; drain out
                raise AlgorithmInvariantError(
                    f"region {task.key} is not in flight; only its "
                    "acquirer may publish a shard plan"
                )
            del self._in_flight[task.key]
            if plan.shards:
                pending = deque(
                    ShardTask(task.session, task.index, task.region, shard)
                    for shard in plan.shards
                )
                self._live[task.key] = _LiveRegion(task, plan, pending)
                self._cond.notify_all()
                return None
            self._merging.add(task.key)
            self._cond.notify_all()
            return RegionCompletion(task=task, plan=plan, results=())

    def complete_shard(
        self, task: ShardTask, result
    ) -> RegionCompletion | None:
        """File one shard's result; exact cost feeds the estimator.

        Returns the region's :class:`RegionCompletion` when this was
        its last outstanding shard (and the region did not fail).
        """
        self.estimator.record_shard(task.key, result.cost)
        with self._cond:
            live = self._live.get(task.key)
            if live is None or task.shard.order in live.results:
                if self._aborted and live is None:
                    return None  # region written off; drain out
                raise AlgorithmInvariantError(
                    f"shard {task.shard.order} of region {task.key} is "
                    "not in flight; a shard may only be completed once"
                )
            live.in_flight -= 1
            live.results[task.shard.order] = result
            if live.failed:
                if live.in_flight == 0 and not live.pending:
                    del self._live[task.key]
                self._cond.notify_all()
                return None
            if live.pending or live.in_flight > 0:
                self._cond.notify_all()
                return None
            del self._live[task.key]
            self._merging.add(task.key)
            self._cond.notify_all()
            return RegionCompletion(
                task=live.task,
                plan=live.plan,
                results=tuple(
                    live.results[order]
                    for order in range(len(live.plan.shards))
                ),
            )

    def complete_region(self, key: RegionKey, cost: int) -> None:
        """Record a merged region's exact total cost (after the merge).

        After :meth:`abort` the call is silently dropped: the abort
        already wrote the pending merge off as failed, and recording a
        completed cost for a failed key would corrupt the accounting a
        surviving worker reads.
        """
        with self._cond:
            if self._aborted:
                self._cond.notify_all()
                return
            self._merging.discard(key)
            self._completed[key] = int(cost)
            self._cond.notify_all()
        self.estimator.record(key, int(cost))
        with self._lock:
            self._refresh_estimates()

    def complete(self, task: RegionTask, cost: int) -> None:
        """Region-level completion (inherited path), plus a wake-up."""
        super().complete(task, cost)
        with self._cond:
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Failure
    # ------------------------------------------------------------------
    def fail(self, task) -> None:
        """Mark a region (presplit) or shard task as failed.

        A shard failure fails its whole region: the region's queued
        shards are dropped, in-flight siblings are drained silently,
        and the region is never merged.
        """
        if isinstance(task, ShardTask):
            with self._cond:
                live = self._live.get(task.key)
                if live is None:
                    if self._aborted:
                        return  # region written off; drain out
                    raise AlgorithmInvariantError(
                        f"shard {task.shard.order} of region {task.key} "
                        "is not in flight"
                    )
                live.in_flight -= 1
                live.pending.clear()
                if not live.failed:
                    live.failed = True
                    self._failed.add(task.key)
                if live.in_flight == 0:
                    del self._live[task.key]
                self._cond.notify_all()
            return
        super().fail(task)
        with self._cond:
            self._cond.notify_all()

    def fail_region(self, key: RegionKey) -> None:
        """Mark a region failed after its merge step raised."""
        with self._cond:
            self._merging.discard(key)
            self._failed.add(key)
            self._cond.notify_all()

    def requeue(self, task) -> bool:
        """Hand a departed worker's region *or shard* back to the queue.

        A region (pre-presplit) returns to the front of its home queue
        exactly as in the base class.  A shard returns to the front of
        its live region's pending deque, so the next acquirer resumes
        the region where the departed worker left it.  Either way,
        waiters blocked in :meth:`acquire` are notified -- requeued work
        is new work.  A shard of a region a sibling failure already
        wrote off is drained silently (``False``), mirroring
        :meth:`fail`'s drain semantics.
        """
        if not isinstance(task, ShardTask):
            with self._cond:
                requeued = self._requeue_locked(task)
                if requeued:
                    self._cond.notify_all()
                return requeued
        with self._cond:
            live = self._live.get(task.key)
            if live is None:
                if self._aborted:
                    return False
                raise AlgorithmInvariantError(
                    f"shard {task.shard.order} of region {task.key} is "
                    "not in flight; only its acquirer may requeue it"
                )
            live.in_flight -= 1
            if live.failed:
                # A sibling shard already failed the whole region; the
                # returned shard drains like a late completion would.
                if live.in_flight == 0 and not live.pending:
                    del self._live[task.key]
                self._cond.notify_all()
                return False
            live.pending.appendleft(task)
            self._cond.notify_all()
            return True

    def abort(self) -> None:
        """Discard all unfinished work and wake every blocked worker.

        Extends :meth:`WorkStealingScheduler.abort` one level down:
        live regions (published shard plans) and pending merges are
        failed too, and waiters blocked in :meth:`acquire` are notified
        so they observe the aborted state and return ``None``.
        Idempotent like the base class -- a repeated abort only
        re-notifies the waiters, it never re-fails anything.
        """
        with self._cond:
            if not self._aborted:
                self._abort_locked()
                self._failed.update(self._live)
                self._live.clear()
                self._failed.update(self._merging)
                self._merging.clear()
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def remaining(self) -> int:
        """Regions not yet merged or failed (any lifecycle stage)."""
        with self._lock:
            queued = sum(len(q) for q in self._queues)
            return (
                queued
                + len(self._in_flight)
                + len(self._live)
                + len(self._merging)
            )

    def __repr__(self) -> str:
        with self._lock:
            queued = sum(len(q) for q in self._queues)
            return (
                f"SubtreeScheduler({self._total} regions: {queued} queued, "
                f"{len(self._in_flight)} presplitting, "
                f"{len(self._live)} live, {len(self._merging)} merging, "
                f"{len(self._completed)} done, {len(self._failed)} failed, "
                f"{len(self._steals)} steals)"
            )
