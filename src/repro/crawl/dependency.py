"""Attribute-dependency pruning (paper Section 1.3, "Practical Remarks").

Real hidden databases have attribute dependencies -- "BMW does not sell
trucks in the US" -- so some points of the Cartesian-product data space
can never hold a tuple.  The paper's heuristic: "the crawler issues a
query demanded by our algorithm only if the query covers at least one
valid point in D (according to the crawler's dependency knowledge).  The
query cost can only go down, i.e., still guaranteed to be below our
upper bounds."

We model dependency knowledge as *forbidden value pairs* between two
categorical attributes.  A query certainly covers no valid point when it
pins both attributes of a forbidden pair to its two values; any query
leaving a wildcard open is conservatively treated as potentially
non-empty.  The check is sound (never skips a non-empty query), so
crawler correctness is untouched.

:class:`DependencyFilteringClient` applies the heuristic transparently:
it sits where a :class:`~repro.server.client.CachingClient` would and
locally answers provably-empty queries with an empty resolved response
at zero cost.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import SchemaError
from repro.query.predicates import EqualityPredicate
from repro.query.query import Query
from repro.server.client import CachingClient
from repro.server.response import QueryResponse
from repro.server.server import TopKServer

__all__ = ["PairwiseDependencyOracle", "DependencyFilteringClient"]


class PairwiseDependencyOracle:
    """Knowledge base of forbidden (attribute, value) pairs.

    Parameters
    ----------
    forbidden:
        Tuples ``(attr_i, value_i, attr_j, value_j)`` declaring that no
        tuple has ``A_i = value_i`` and ``A_j = value_j`` simultaneously.
    """

    def __init__(self, forbidden: Iterable[tuple[int, int, int, int]] = ()):
        self._forbidden: set[tuple[int, int, int, int]] = set()
        for attr_i, value_i, attr_j, value_j in forbidden:
            self.forbid(attr_i, value_i, attr_j, value_j)

    def forbid(
        self, attr_i: int, value_i: int, attr_j: int, value_j: int
    ) -> None:
        """Declare the combination ``A_i = value_i & A_j = value_j`` invalid."""
        if attr_i == attr_j:
            raise SchemaError("a dependency relates two distinct attributes")
        if attr_i > attr_j:
            attr_i, value_i, attr_j, value_j = attr_j, value_j, attr_i, value_i
        self._forbidden.add((attr_i, value_i, attr_j, value_j))

    def __len__(self) -> int:
        return len(self._forbidden)

    def certainly_empty(self, query: Query) -> bool:
        """Sound emptiness test: only pinned forbidden pairs prune."""
        pinned: dict[int, int] = {}
        for i, pred in enumerate(query.predicates):
            if isinstance(pred, EqualityPredicate) and pred.value is not None:
                pinned[i] = pred.value
        for attr_i, value_i, attr_j, value_j in self._forbidden:
            if pinned.get(attr_i) == value_i and pinned.get(attr_j) == value_j:
                return True
        return False

    @classmethod
    def from_dataset_columns(
        cls, dataset, attr_i: int, attr_j: int
    ) -> "PairwiseDependencyOracle":
        """Learn all value pairs *absent* between two categorical columns.

        A convenience for experiments: builds the oracle a domain expert
        would supply, by enumerating the combinations that never occur.
        """
        space = dataset.space
        if not (space[attr_i].is_categorical and space[attr_j].is_categorical):
            raise SchemaError("dependencies relate categorical attributes")
        present = {
            (int(a), int(b))
            for a, b in zip(dataset.rows[:, attr_i], dataset.rows[:, attr_j])
        }
        oracle = cls()
        size_i = space[attr_i].domain_size
        size_j = space[attr_j].domain_size
        assert size_i is not None and size_j is not None
        for value_i in range(1, size_i + 1):
            for value_j in range(1, size_j + 1):
                if (value_i, value_j) not in present:
                    oracle.forbid(attr_i, value_i, attr_j, value_j)
        return oracle


class DependencyFilteringClient(CachingClient):
    """A caching client that never pays for provably-empty queries."""

    def __init__(self, server: TopKServer, oracle: PairwiseDependencyOracle):
        super().__init__(server)
        self._oracle = oracle
        self._pruned = 0

    @property
    def pruned(self) -> int:
        """How many queries were answered locally as empty."""
        return self._pruned

    def run(self, query: Query) -> QueryResponse:
        if self.peek(query) is None and self._oracle.certainly_empty(query):
            self._store_local(query, QueryResponse((), False))
            self._pruned += 1
        return super().run(query)
