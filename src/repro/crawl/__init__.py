"""The paper's crawling algorithms and shared crawler machinery.

Quick map (paper section -> class):

* Section 2.1  ``binary-shrink``     -> :class:`BinaryShrink`
* Section 2.2+ ``rank-shrink``       -> :class:`RankShrink`
* Section 3.1  ``DFS``               -> :class:`DepthFirstSearch`
* Section 3.2  ``slice-cover``       -> :class:`SliceCover`
* Section 3.2  ``lazy-slice-cover``  -> :class:`LazySliceCover`
* Section 5    ``hybrid``            -> :class:`Hybrid`

:class:`Hybrid` accepts any space kind and is the right default for
callers who just want the database crawled.
"""

from repro.crawl import profiling
from repro.crawl.base import (
    Crawler,
    CrawlResult,
    ProgressAggregator,
    ProgressPoint,
    SessionState,
    concat_progress,
    merge_progress,
)
from repro.crawl.binary_shrink import (
    BinaryShrink,
    explore_binary,
    solve_binary,
)
from repro.crawl.checkpoint import load_checkpoint, save_checkpoint
from repro.crawl.coordinator import (
    LimitCoordinator,
    SharedBudget,
    SharedClock,
    SharedDailyLimit,
    SharedLimitClient,
    SharedStats,
    TenantLimitRegistry,
)
from repro.crawl.dependency import (
    DependencyFilteringClient,
    PairwiseDependencyOracle,
)
from repro.crawl.dfs import DepthFirstSearch
from repro.crawl.executors import (
    EXECUTORS,
    AsyncExecutor,
    CrawlExecutor,
    ProcessExecutor,
    SequentialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.crawl.hybrid import Hybrid
from repro.crawl.incremental import SnapshotDiff, diff_snapshots, recrawl
from repro.crawl.ordering import (
    order_by_distinct_count,
    order_by_domain_size,
    reorder_dataset,
)
from repro.crawl.parallel import crawl_partitioned_parallel, default_workers
from repro.crawl.partition import (
    DEFAULT_MAX_REGIONS,
    PartitionedResult,
    PartitionPlan,
    SubspaceView,
    crawl_partitioned,
    partition_space,
)
from repro.crawl.rank_shrink import RankShrink, explore_numeric, solve_numeric
from repro.crawl.rebalance import (
    CostEstimator,
    RegionCompletion,
    RegionTask,
    ShardTask,
    SubtreeScheduler,
    WorkStealingScheduler,
)
from repro.crawl.runtime import (
    AggregatorFeed,
    BatchSink,
    GridSink,
    LocalUnitRunner,
    ResultSink,
    ShardPolicy,
    UnitRunner,
    drive_futures,
    drive_session,
    drive_stealing,
    run_region,
)
from repro.crawl.sampling import RandomProber
from repro.crawl.sharding import (
    DEFAULT_MAX_SHARDS,
    RegionShardPlan,
    SubtreeCrawler,
    SubtreeShard,
    TrunkSegment,
    crawl_shard,
    merge_region_shards,
    presplit_region,
)
from repro.crawl.slice_cover import LazySliceCover, SliceCover
from repro.crawl.spec import ALGORITHMS, CrawlSpec, spec_from_args
from repro.crawl.verify import (
    VerificationReport,
    assert_complete,
    verify_complete,
)

__all__ = [
    "profiling",
    "Crawler",
    "CrawlResult",
    "ProgressAggregator",
    "ProgressPoint",
    "SessionState",
    "concat_progress",
    "merge_progress",
    "CrawlExecutor",
    "SequentialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "AsyncExecutor",
    "EXECUTORS",
    "make_executor",
    "ALGORITHMS",
    "CrawlSpec",
    "spec_from_args",
    "LimitCoordinator",
    "SharedLimitClient",
    "SharedBudget",
    "SharedDailyLimit",
    "SharedClock",
    "SharedStats",
    "TenantLimitRegistry",
    "CostEstimator",
    "RegionTask",
    "ShardTask",
    "RegionCompletion",
    "WorkStealingScheduler",
    "SubtreeScheduler",
    "AggregatorFeed",
    "UnitRunner",
    "LocalUnitRunner",
    "ResultSink",
    "GridSink",
    "BatchSink",
    "ShardPolicy",
    "run_region",
    "drive_session",
    "drive_stealing",
    "drive_futures",
    "DEFAULT_MAX_SHARDS",
    "SubtreeShard",
    "TrunkSegment",
    "RegionShardPlan",
    "SubtreeCrawler",
    "presplit_region",
    "crawl_shard",
    "merge_region_shards",
    "BinaryShrink",
    "solve_binary",
    "explore_binary",
    "RankShrink",
    "solve_numeric",
    "explore_numeric",
    "DepthFirstSearch",
    "SliceCover",
    "LazySliceCover",
    "Hybrid",
    "RandomProber",
    "DependencyFilteringClient",
    "PairwiseDependencyOracle",
    "load_checkpoint",
    "save_checkpoint",
    "order_by_distinct_count",
    "order_by_domain_size",
    "reorder_dataset",
    "DEFAULT_MAX_REGIONS",
    "PartitionedResult",
    "PartitionPlan",
    "SubspaceView",
    "crawl_partitioned",
    "crawl_partitioned_parallel",
    "default_workers",
    "partition_space",
    "SnapshotDiff",
    "diff_snapshots",
    "recrawl",
    "VerificationReport",
    "assert_complete",
    "verify_complete",
]
