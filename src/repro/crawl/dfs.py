"""``DFS``: the categorical baseline (Section 3.1; outlined in [15]).

The categorical data space is arranged as a trie -- the *data space
tree* ``T``: a node at level ``l`` pins attributes ``A1 .. Al`` to
constants and wildcards the rest; its children refine ``A(l+1)`` to each
of its ``U(l+1)`` values.  DFS simply walks ``T`` depth-first, issuing
every visited node's query, and prunes a subtree as soon as its query
resolves (the response already contains every tuple below).

No attractive worst-case bound holds; slice-cover (Section 3.2) fixes
that by consulting precomputed *slice queries* before descending.
"""

from __future__ import annotations

from repro.crawl.base import Crawler
from repro.dataspace.space import SpaceKind
from repro.exceptions import InfeasibleCrawlError, SchemaError
from repro.query.query import Query

__all__ = ["DepthFirstSearch"]


class DepthFirstSearch(Crawler):
    """Baseline crawler for purely categorical spaces."""

    name = "DFS"

    def __init__(
        self,
        source,
        *,
        max_queries: int | None = None,
        batteries: bool = True,
    ):
        super().__init__(source, max_queries=max_queries, batteries=batteries)
        if self.space.kind is not SpaceKind.CATEGORICAL:
            raise SchemaError(
                "DFS handles purely categorical spaces; got "
                f"{self.space.kind.value}"
            )

    def _execute(self) -> None:
        d = self.space.dimensionality
        # Stack of (node query, level); children are pushed in reverse
        # domain order so values are explored in ascending order.
        stack: list[tuple[Query, int]] = [(Query.full(self.space), 0)]
        while stack:
            query, level = stack.pop()
            response = self._run_query(query)
            if response.resolved:
                self._confirm(response.rows)
                continue
            if level == d:
                raise InfeasibleCrawlError(
                    f"point query {query} overflowed: more than k={self.k} "
                    "duplicates at one point"
                )
            attr = self.space[level]
            assert attr.domain_size is not None
            if level + 1 == d:
                # Point-level children push nothing back, so the
                # sequential walk issues them consecutively anyway --
                # a sibling battery preserves the depth-first issue
                # order exactly while sharing one engine context.
                children = [
                    query.with_value(level, value)
                    for value in range(1, attr.domain_size + 1)
                ]
                for child, child_response in zip(
                    children, self._run_battery(children)
                ):
                    if child_response.overflow:
                        raise InfeasibleCrawlError(
                            f"point query {child} overflowed: more than "
                            f"k={self.k} duplicates at one point"
                        )
                    self._confirm(child_response.rows)
                continue
            for value in range(attr.domain_size, 0, -1):
                stack.append((query.with_value(level, value), level + 1))
