"""The crawl runtime: one transport-agnostic drive loop for every backend.

The paper's optimality argument is about *which queries* a crawl issues,
never about *where* they run.  The execution layer grew four backends
(sequential, thread, process, async), each times rebalancing, subtree
sharding and shared limits -- and until this module existed, the
dispatch logic was written once per combination: six near-identical
drive loops that had to be hand-ported for every scheduling improvement.
This module is the single copy.  It owns the **session lifecycle state
machine** over :class:`~repro.crawl.rebalance.RegionTask` /
:class:`~repro.crawl.rebalance.ShardTask` units -- acquire, run,
complete / publish / merge, fail, abort-drain -- plus the aggregator and
estimator feedback, parameterised by two small protocols:

:class:`UnitRunner`
    *How one unit of work executes* on a substrate: crawl a region,
    presplit it, crawl one subtree shard.  The in-process backends use
    :class:`LocalUnitRunner` over the caller's sources; the process
    backend builds one per pool worker over its pickled source copies.
:class:`ResultSink`
    *Where outcomes go*: the parent files them straight into the result
    grid (:class:`GridSink`); a pool worker batches them for the return
    trip and pushes compact progress events to the control plane
    (:class:`BatchSink`).

Three drive shapes cover every backend x feature combination:

* :func:`drive_session` -- static dispatch: one session's bundle in
  plan order (sequential, thread, async and process backends without
  rebalancing);
* :func:`drive_stealing` -- the work-stealing loop, one-level
  (:class:`~repro.crawl.rebalance.WorkStealingScheduler`) or two-level
  (:class:`~repro.crawl.rebalance.SubtreeScheduler`), run by worker
  threads in the parent *or* by pool worker processes against a
  coordinator-hosted scheduler proxy -- the same code either way;
* :func:`drive_futures` -- the parent-side dispatcher for transports
  whose unit execution returns futures (the process backend's
  per-worker-copy rebalanced modes).

:class:`ShardPolicy` decides which regions are presplit into subtree
shards and how finely -- uniformly (the classic ``shard_subtrees=N``)
or adaptively (``"auto"``: only regions whose estimated cost exceeds
the fleet's fair share).  Because sharding is result-invariant (an
exact prefix decomposition; see :mod:`repro.crawl.sharding`), any
policy yields the same merged bytes.

Determinism contract: nothing in this module may influence *what* a
region crawl computes -- only when and where it runs.  Every unit files
its result at its plan position, failures are ranked by lowest plan
position after a full drain, and the merge in
:class:`~repro.crawl.executors.CrawlExecutor` stays byte-identical to
the sequential reference.
"""

from __future__ import annotations

import abc
import math
import threading
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.crawl import profiling
from repro.crawl.base import (
    Crawler,
    CrawlResult,
    ProgressAggregator,
    ProgressPoint,
)
from repro.crawl.partition import PartitionPlan, _crawl_region
from repro.crawl.rebalance import (
    CostEstimator,
    RegionCompletion,
    RegionKey,
    RegionTask,
    ShardTask,
    SubtreeScheduler,
    WorkStealingScheduler,
)
from repro.crawl.sharding import (
    DEFAULT_MAX_SHARDS,
    crawl_shard,
    merge_region_shards,
    presplit_region,
)
from repro.exceptions import WorkerDeparted

__all__ = [
    "AggregatorFeed",
    "UnitRunner",
    "LocalUnitRunner",
    "ResultSink",
    "GridSink",
    "BatchSink",
    "ShardPolicy",
    "crawl_region_unit",
    "run_region",
    "drive_session",
    "drive_stealing",
    "drive_futures",
    "steal_setup",
]

#: One recorded failure: the region's plan position and its exception
#: (:data:`~repro.crawl.rebalance.RegionKey` is the position type).
Failure = tuple[RegionKey, Exception]


class AggregatorFeed:
    """Per-session progress and terminal-state bookkeeping.

    Translates region-level progress samples into the session-level
    absolute (queries, tuples) points a
    :class:`~repro.crawl.base.ProgressAggregator` expects, tolerating
    regions of one session running concurrently (after a steal).  Also
    marks sessions ``done`` when their last region lands and ``failed``
    when a region crawl raises, so aggregator snapshots never show a
    dead worker as in-flight.

    Examples
    --------
    Executors build one feed per run and thread it through the drive
    loops; a monitor only ever talks to the aggregator::

        feed = AggregatorFeed(aggregator, plan)
        feed.region_counts(session=0, index=0, cost=7, tuples=40)
        aggregator.totals()  # -> ProgressPoint(7, 40)
    """

    def __init__(
        self, aggregator: ProgressAggregator | None, plan: PartitionPlan
    ):
        self._aggregator = aggregator
        self._lock = threading.Lock()
        self._done = [[0, 0] for _ in plan.bundles]
        # Live points keyed by the unit's live_key -- a region and the
        # subtree shards split off it report independently.
        self._live: list[dict[tuple, ProgressPoint]] = [
            {} for _ in plan.bundles
        ]
        self._outstanding = [len(bundle) for bundle in plan.bundles]
        if aggregator is not None:
            for session, bundle in enumerate(plan.bundles):
                if not bundle:
                    aggregator.mark_done(session)

    @property
    def active(self) -> bool:
        """Whether anything consumes this feed (an aggregator is set).

        Transports use this to skip progress plumbing that nothing
        would read -- e.g. the shared-limit pull loops only stream
        per-region control-plane events when a live view exists.
        """
        return self._aggregator is not None

    def listener(
        self, task: RegionTask | ShardTask
    ) -> Callable[[ProgressPoint], None] | None:
        """The progress listener to attach to ``task``'s crawler."""
        if self._aggregator is None:
            return None

        def report(point: ProgressPoint) -> None:
            # The aggregator call stays under the feed lock: computing
            # the total and publishing it must be atomic, or a stale
            # total from a preempted worker could overwrite a newer one
            # (regions of one session run concurrently after a steal).
            with self._lock:
                self._live[task.session][task.live_key] = point
                self._aggregator.report(
                    task.session, self._session_total(task.session)
                )

        return report

    def _session_total(self, session: int) -> ProgressPoint:
        # Caller holds self._lock.
        queries, tuples = self._done[session]
        for point in self._live[session].values():
            queries += point.queries
            tuples += point.tuples
        return ProgressPoint(queries, tuples)

    def region_finished(
        self, session: int, index: int, result: CrawlResult
    ) -> None:
        """Fold a region's merged result, clearing its live units.

        With subtree sharding, a region's trunk and each of its shards
        report live points under separate keys; once the region merges,
        every key of that region (``live_key[1] == index``) is replaced
        by the exact merged totals.
        """
        self.region_counts(session, index, result.cost, len(result.rows))

    def region_counts(
        self, session: int, index: int, cost: int, tuples: int
    ) -> None:
        """Fold a finished region given its bare (cost, tuples) counts.

        The wire form of :meth:`region_finished`: the shared-limit
        process mode relays region completions from pool workers as
        compact events, not result objects (those return with the
        worker's final batch), so the live aggregator view advances as
        regions land rather than when the pool drains.
        """
        if self._aggregator is None:
            return
        with self._lock:
            live = self._live[session]
            for key in [k for k in live if k[1] == index]:
                del live[key]
            self._done[session][0] += cost
            self._done[session][1] += tuples
            self._outstanding[session] -= 1
            # Atomic with the total's computation; see listener().
            self._aggregator.report(session, self._session_total(session))
            if self._outstanding[session] == 0:
                self._aggregator.mark_done(session)

    def failed_session(self, session: int) -> None:
        """Mark ``session`` failed (a region or shard of it raised)."""
        if self._aggregator is None:
            return
        self._aggregator.mark_failed(session)

    def cancelled(self, session: int) -> None:
        """Mark a session the executor abandoned before running it.

        A no-op for sessions already terminal (e.g. an empty bundle
        marked done at construction).
        """
        if self._aggregator is None:
            return
        if not self._aggregator.state(session).terminal:
            self._aggregator.mark_cancelled(session)


# ----------------------------------------------------------------------
# The backend protocol: how a unit runs, where its outcome goes
# ----------------------------------------------------------------------
class UnitRunner(abc.ABC):
    """How one unit of work executes on a backend's substrate.

    The drive loops never touch sources, crawlers or caches directly;
    they hand each acquired unit to a runner.  A runner must be safe to
    call from several workers at once (the in-process backends share
    one across their worker threads).

    Examples
    --------
    The built-in :class:`LocalUnitRunner` covers every backend; a test
    double only needs the three unit methods::

        class Recording(UnitRunner):
            def region(self, task):
                return crawl_somehow(task)
            def presplit(self, task, max_shards):
                raise NotImplementedError
            def shard(self, task):
                raise NotImplementedError
    """

    @abc.abstractmethod
    def region(self, task: RegionTask) -> CrawlResult:
        """Crawl one whole region."""

    @abc.abstractmethod
    def presplit(self, task: RegionTask, max_shards: int):
        """Presplit one region into a trunk + subtree shard plan."""

    @abc.abstractmethod
    def shard(self, task: ShardTask) -> CrawlResult:
        """Crawl one subtree shard of a presplit region."""

    def region_boundary(self) -> None:
        """Hook fired after each region-level unit completes or fails.

        The lease-batching seam: the process backend's pool workers
        flush unused :class:`~repro.server.limits.LimitLease` chunks
        and buffered stats back to the shared-limit control plane here,
        so admission headroom never idles in a worker past the region
        that leased it.  In-process backends need nothing (they share
        the limit objects by reference) and inherit this no-op.
        """

    def drained(self) -> None:
        """Hook fired once when a worker's drive loop runs dry."""
        self.region_boundary()


class LocalUnitRunner(UnitRunner):
    """Run units against in-memory sources, one fresh crawler per unit.

    The one concrete runner every backend uses: the parent's worker
    threads run it over the caller's sources (with live progress
    listeners wired to an :class:`AggregatorFeed`), and each process
    pool worker builds one over its unpickled source copies (no feed --
    progress travels as events instead).

    Examples
    --------
    ::

        runner = LocalUnitRunner(
            sources, Hybrid, allow_partial=False, feed=feed
        )
        result = runner.region(RegionTask(0, 0, region))
    """

    def __init__(
        self,
        sources: Sequence,
        crawler_factory: Callable[..., Crawler],
        allow_partial: bool,
        *,
        feed: AggregatorFeed | None = None,
        flush: Callable[[], None] | None = None,
    ):
        self._sources = sources
        self._factory = crawler_factory
        self._allow_partial = allow_partial
        self._feed = feed
        self._flush = flush

    def _listener(self, task):
        if self._feed is None:
            return None
        return self._feed.listener(task)

    def region(self, task: RegionTask) -> CrawlResult:
        """Crawl one whole region against its session's source."""
        prof = profiling.active()
        start = profiling.clock() if prof is not None else 0.0
        try:
            return _crawl_region(
                self._sources[task.session],
                task.region,
                crawler_factory=self._factory,
                allow_partial=self._allow_partial,
                listener=self._listener(task),
            )
        finally:
            if prof is not None:
                prof.record("runtime.region", profiling.clock() - start)

    def presplit(self, task: RegionTask, max_shards: int):
        """Presplit one region; the trunk's progress reports live."""
        prof = profiling.active()
        start = profiling.clock() if prof is not None else 0.0
        try:
            return presplit_region(
                self._sources[task.session],
                task.region,
                crawler_factory=self._factory,
                allow_partial=self._allow_partial,
                max_shards=max_shards,
                listener=self._listener(task),
            )
        finally:
            if prof is not None:
                prof.record("runtime.presplit", profiling.clock() - start)

    def shard(self, task: ShardTask) -> CrawlResult:
        """Crawl one subtree shard against its session's source."""
        prof = profiling.active()
        start = profiling.clock() if prof is not None else 0.0
        try:
            return crawl_shard(
                self._sources[task.session],
                task.region,
                task.shard,
                allow_partial=self._allow_partial,
                listener=self._listener(task),
            )
        finally:
            if prof is not None:
                prof.record("runtime.shard", profiling.clock() - start)

    def region_boundary(self) -> None:
        """Flush shared-limit leases/stats when the transport has any."""
        if self._flush is not None:
            self._flush()


class ResultSink(abc.ABC):
    """Where a drive loop files unit outcomes.

    Exactly two implementations exist -- :class:`GridSink` in the
    parent, :class:`BatchSink` in pool workers -- and the drive loops
    cannot tell them apart, which is what makes one loop serve both
    in-process and cross-process transports.
    """

    @abc.abstractmethod
    def region_done(self, key: RegionKey, result: CrawlResult) -> None:
        """File one region's (merged) result at its plan position."""

    @abc.abstractmethod
    def region_failed(
        self, key: RegionKey, session: int, exc: Exception
    ) -> None:
        """Record a region (or shard) failure at its plan position."""


class GridSink(ResultSink):
    """The parent-side sink: results into the grid, failures ranked.

    Owns the mutable result grid and failure list the executor's
    deterministic merge consumes, plus the :class:`AggregatorFeed`
    that keeps live progress truthful.  Thread-safe: worker threads of
    the in-process backends all file through one instance.

    Examples
    --------
    ::

        sink = GridSink(plan, feed)
        drive_session(0, plan.bundles[0], runner, sink)
        sink.grid[0][0]      # the region's CrawlResult
        sink.failures        # [] on success

    ``completed`` pre-files already-crawled results (a resumed crawl's
    checkpoint) into the grid -- they advance the progress totals but
    never fire ``on_region``, which is the checkpoint-writer callback
    invoked (thread-safely, by whichever worker files the region) for
    every *newly* completed region.
    """

    def __init__(
        self,
        plan: PartitionPlan,
        feed: AggregatorFeed,
        completed: Mapping[RegionKey, CrawlResult] | None = None,
        on_region: Callable[[RegionKey, CrawlResult], None] | None = None,
    ):
        self.grid: list[list[CrawlResult | None]] = [
            [None] * len(bundle) for bundle in plan.bundles
        ]
        self.failures: list[Failure] = []
        self.feed = feed
        self._on_region = on_region
        self._lock = threading.Lock()
        for (session, index), result in sorted((completed or {}).items()):
            self.grid[session][index] = result
            self.feed.region_finished(session, index, result)

    def region_done(self, key: RegionKey, result: CrawlResult) -> None:
        """File the result and advance the session's progress totals."""
        session, index = key
        self.grid[session][index] = result
        self.feed.region_finished(session, index, result)
        if self._on_region is not None:
            self._on_region(key, result)

    def region_failed(
        self, key: RegionKey, session: int, exc: Exception
    ) -> None:
        """Record the failure and mark the session failed."""
        with self._lock:
            self.failures.append((key, exc))
        self.feed.failed_session(session)

    def file_batch(
        self,
        results: list[tuple[RegionKey, CrawlResult]],
        failures: list[Failure],
        *,
        update_feed: bool = True,
    ) -> None:
        """Fold a pool worker's returned batch into the grid.

        ``update_feed=False`` for transports that already relayed the
        worker's progress events into the feed (the shared-limit pull
        loops) -- feeding the batch again would double-count.
        """
        for key, result in results:
            if update_feed:
                self.region_done(key, result)
            else:
                self.grid[key[0]][key[1]] = result
        for key, exc in failures:
            if update_feed:
                self.region_failed(key, key[0], exc)
            else:
                with self._lock:
                    self.failures.append((key, exc))


class BatchSink(ResultSink):
    """The pool-worker sink: batch results home, stream events.

    Results are dead weight in the coordinator, so they accumulate
    locally and return with the worker's final batch; completions and
    failures are additionally pushed to the control plane as compact
    progress events (``("region", session, index, cost, tuples)`` /
    ``("failed", session)``) so the parent's live aggregator view
    advances while the pool still runs.  ``plane=None`` (the per-copy
    static mode) skips the events and just batches.

    Examples
    --------
    ::

        sink = BatchSink(plane)
        drive_stealing(scheduler, 0, runner, sink)
        results, failures = sink.batch
    """

    def __init__(self, plane=None):
        self._plane = plane
        self._results: list[tuple[RegionKey, CrawlResult]] = []
        self._failures: list[Failure] = []

    def region_done(self, key: RegionKey, result: CrawlResult) -> None:
        """Batch the result; stream a compact completion event."""
        self._results.append((key, result))
        if self._plane is not None:
            self._plane.push_event(
                ("region", key[0], key[1], result.cost, len(result.rows))
            )

    def region_failed(
        self, key: RegionKey, session: int, exc: Exception
    ) -> None:
        """Batch the failure; stream a compact failure event."""
        self._failures.append((key, exc))
        if self._plane is not None:
            self._plane.push_event(("failed", session))

    @property
    def batch(
        self,
    ) -> tuple[list[tuple[RegionKey, CrawlResult]], list[Failure]]:
        """The worker's return payload: (completed results, failures)."""
        return self._results, self._failures


# ----------------------------------------------------------------------
# Shard policy: which regions presplit, and how finely
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPolicy:
    """Which regions are presplit into subtree shards, and how finely.

    ``budgets`` maps a region's plan position to its ``max_shards``
    target; regions absent from the map crawl whole.  Policies are
    plain data (picklable into pool workers) and -- because subtree
    sharding is result-invariant -- *any* policy produces the same
    merged bytes; the policy only decides where scheduling effort is
    spent.

    Examples
    --------
    The classic fixed target presplits every region; the adaptive
    planner spends shards only on regions estimated to exceed the
    fleet's fair share::

        uniform = ShardPolicy.uniform(plan, 8)
        auto = ShardPolicy.adaptive(plan, estimator, workers=4)
        auto.budget_for((0, 0))   # int target, or None (crawl whole)
    """

    budgets: Mapping[RegionKey, int]

    def budget_for(self, key: RegionKey) -> int | None:
        """The region's shard target, or ``None`` to crawl it whole."""
        return self.budgets.get(key)

    @property
    def max_budget(self) -> int:
        """The largest per-region shard target (0 when none presplit)."""
        return max(self.budgets.values(), default=0)

    @property
    def sharded(self) -> bool:
        """Whether any region is presplit under this policy."""
        return bool(self.budgets)

    @classmethod
    def uniform(cls, plan: PartitionPlan, max_shards: int) -> "ShardPolicy":
        """Presplit every region to the same ``max_shards`` target."""
        if max_shards < 1:
            raise ValueError(
                f"shard_subtrees must be positive, got {max_shards}"
            )
        budgets = {
            (session, index): max_shards
            for session, bundle in enumerate(plan.bundles)
            for index in range(len(bundle))
        }
        return cls(budgets)

    @classmethod
    def adaptive(
        cls,
        plan: PartitionPlan,
        estimator: CostEstimator | None,
        workers: int,
        *,
        target: int = DEFAULT_MAX_SHARDS,
    ) -> "ShardPolicy":
        """Presplit only regions estimated above the fleet's fair share.

        The fair share is ``total estimated cost / workers``: a region
        below it cannot be the straggler, so splitting it buys nothing
        and costs presplit overhead.  A region above it gets a shard
        target proportional to how many fair shares it spans (capped at
        ``target``), so the fleet can spread exactly the regions that
        would otherwise serialise the crawl.  With a fresh (flat)
        estimator and at least as many regions as workers, *nothing*
        is presplit -- whole-region stealing already balances that.
        """
        estimator = estimator if estimator is not None else CostEstimator()
        estimates = {
            (session, index): estimator.estimate((session, index))
            for session, bundle in enumerate(plan.bundles)
            for index in range(len(bundle))
        }
        total = sum(estimates.values())
        if not estimates or total <= 0:
            return cls({})
        fair_share = total / max(1, workers)
        budgets = {
            key: max(2, min(target, math.ceil(estimate / fair_share)))
            for key, estimate in estimates.items()
            if estimate > fair_share
        }
        return cls(budgets)

    @classmethod
    def resolve(
        cls,
        shard_subtrees: "int | str | None",
        plan: PartitionPlan,
        estimator: CostEstimator | None,
        workers: int,
    ) -> "ShardPolicy | None":
        """Map an executor's ``shard_subtrees`` argument to a policy.

        ``None`` disables sharding, an ``int`` is the uniform target,
        and ``"auto"`` selects the estimator-driven adaptive planner.
        Raises :class:`ValueError` for anything else.
        """
        if shard_subtrees is None:
            return None
        if shard_subtrees == "auto":
            return cls.adaptive(plan, estimator, workers)
        if isinstance(shard_subtrees, bool) or not isinstance(
            shard_subtrees, int
        ):
            raise ValueError(
                "shard_subtrees must be a positive int, 'auto' or None, "
                f"got {shard_subtrees!r}"
            )
        return cls.uniform(plan, shard_subtrees)


# ----------------------------------------------------------------------
# The drive loops: the one session lifecycle state machine
# ----------------------------------------------------------------------
def crawl_region_unit(task: RegionTask, runner: UnitRunner, budget=None):
    """Crawl one region unit and *raise* on failure.

    The raising core of :func:`run_region`: crawl ``task``'s region
    through ``runner`` -- as a whole, or presplit into ``budget``-sized
    subtree shards and merged back byte-identically -- and return the
    :class:`~repro.crawl.parallel.CrawlResult`.  The runner's region
    boundary is always flushed, success or failure, so leased budget
    headroom never outlives the attempt.  Callers that must distinguish
    failure *kinds* (the job service treats :class:`WorkerDeparted` as
    retriable, everything else as a region failure) use this directly;
    drive loops that only need pass/fail wrap it via :func:`run_region`.

    When the profiling seam (:mod:`repro.crawl.profiling`) is active,
    ``runtime.region_unit`` times the whole attempt; the finer phases
    (``runtime.region`` / ``runtime.presplit`` / ``runtime.shard``,
    recorded by :class:`LocalUnitRunner`, and ``runtime.merge`` by
    :func:`~repro.crawl.sharding.merge_region_shards`) are recorded at
    the seams every drive shape shares.  Timers only read wall clocks
    around the existing calls; the queries issued and the result
    returned are identical with profiling on or off.
    """
    prof = profiling.active()
    start = profiling.clock() if prof is not None else 0.0
    try:
        if budget is None:
            return runner.region(task)
        plan = runner.presplit(task, budget)
        results = [
            runner.shard(
                ShardTask(task.session, task.index, task.region, shard)
            )
            for shard in plan.shards
        ]
        return merge_region_shards(plan, results)
    finally:
        runner.region_boundary()
        if prof is not None:
            prof.record("runtime.region_unit", profiling.clock() - start)


def run_region(
    task: RegionTask,
    runner: UnitRunner,
    sink: ResultSink,
    policy: ShardPolicy | None = None,
) -> bool:
    """Run one region end to end locally (presplit+merge if budgeted).

    The smallest complete unit of work the runtime knows: crawl
    ``task``'s region through ``runner`` (as a whole, or -- when
    ``policy`` budgets the region -- presplit into subtree shards and
    merged back byte-identically), file the outcome into ``sink``, and
    flush the runner's region boundary.  Returns whether the region
    succeeded; the failure is filed, never raised.  Every drive loop
    bottoms out here, and schedulers that dispatch single regions from
    their own queues (the job service's fleet) call it directly.

    Examples
    --------
    One region, no sharding::

        ok = run_region(RegionTask(0, 0, region), runner, sink)
    """
    budget = policy.budget_for(task.key) if policy is not None else None
    try:
        result = crawl_region_unit(task, runner, budget)
    except Exception as exc:  # noqa: BLE001 - filed, never raised
        sink.region_failed(task.key, task.session, exc)
        return False
    sink.region_done(task.key, result)
    return True


def drive_session(
    session: int,
    bundle: Sequence,
    runner: UnitRunner,
    sink: ResultSink,
    policy: ShardPolicy | None = None,
    skip: frozenset[RegionKey] = frozenset(),
) -> bool:
    """Static dispatch: crawl one session's regions in plan order.

    Stops at the session's first failure (later regions of a failed
    session are never crawled -- exactly the sequential semantics) and
    reports whether the whole bundle succeeded.  With a
    :class:`ShardPolicy`, budgeted regions go through the sharded unit
    of work (presplit, shards in canonical order, merge) -- same
    result, same failure semantics.  ``skip`` holds plan positions a
    resumed crawl already completed (pre-filed into the sink by the
    executor); they are never re-crawled.

    Examples
    --------
    One worker per session is the whole static thread backend::

        for session in range(plan.sessions):
            pool.submit(
                drive_session, session, plan.bundles[session],
                runner, sink,
            )
    """
    for index, region in enumerate(bundle):
        if (session, index) in skip:
            continue
        task = RegionTask(session, index, region)
        if not run_region(task, runner, sink, policy):
            return False
    return True


def _finish_completion(
    scheduler: SubtreeScheduler,
    completion: RegionCompletion,
    sink: ResultSink,
) -> None:
    """Merge a drained region's shards and file the result."""
    task = completion.task
    try:
        result = merge_region_shards(completion.plan, completion.results)
    except Exception as exc:  # noqa: BLE001 - re-raised after the drain
        scheduler.fail_region(task.key)
        sink.region_failed(task.key, task.session, exc)
        return
    scheduler.complete_region(task.key, result.cost)
    sink.region_done(task.key, result)


def _transition(
    scheduler,
    task: RegionTask | ShardTask,
    payload,
    sink: ResultSink,
    presplit: bool,
) -> bool:
    """Advance the state machine after one unit ran successfully.

    ``payload`` is the unit's output (a :class:`CrawlResult`, or a
    shard plan when ``presplit``).  Returns whether a region-level
    boundary was crossed (a region completed or merged).
    """
    if isinstance(task, ShardTask):
        completion = scheduler.complete_shard(task, payload)
    elif presplit:
        completion = scheduler.publish(task, payload)
    else:
        scheduler.complete(task, payload.cost)
        sink.region_done(task.key, payload)
        return True
    if completion is not None:
        _finish_completion(scheduler, completion, sink)
        return True
    return False


def drive_stealing(
    scheduler,
    home_session: int | None,
    runner: UnitRunner,
    sink: ResultSink,
    policy: ShardPolicy | None = None,
) -> bool:
    """One worker's work-stealing drive loop, any transport.

    Drains the scheduler until it runs dry: acquire the next unit
    (own-session regions first, then stolen regions, then -- under a
    :class:`~repro.crawl.rebalance.SubtreeScheduler` -- subtree shards
    of the costliest live region), execute it through ``runner``, and
    advance the scheduler's state machine (complete / publish /
    merge-on-last-shard / fail).  Whichever worker lands a region's
    last shard performs the deterministic merge and files the result at
    the region's plan position.

    Returns ``True`` when the loop ran the scheduler dry, ``False``
    when the worker *departed* mid-crawl: a unit that raises
    :class:`~repro.exceptions.WorkerDeparted` is re-queued on the
    scheduler (:meth:`~repro.crawl.rebalance.WorkStealingScheduler.
    requeue`) for the surviving fleet, and the loop returns so the
    transport can ship the worker's completed batch home.  Either way
    ``runner.drained()`` runs in a ``finally``, so unreturned
    :class:`~repro.server.limits.LimitLease` headroom and buffered
    stats always flush back to the control plane -- budget accounting
    stays exact on every exit path, including hard failures.

    The exact same function is the thread backend's worker loop, the
    async backend's per-thread loop over bridged sources, and the
    process backend's cross-process pull loop (where ``scheduler`` is a
    coordinator-hosted proxy and ``sink`` a :class:`BatchSink`) -- the
    transports differ only in what they pass in.

    Examples
    --------
    ::

        scheduler = WorkStealingScheduler(plan.bundles)
        drive_stealing(scheduler, home_session=0, runner=runner,
                       sink=sink)
        assert scheduler.done()
    """
    try:
        while True:
            task = scheduler.acquire(home_session)
            if task is None:
                return True
            if isinstance(task, ShardTask):
                try:
                    payload = runner.shard(task)
                except WorkerDeparted:
                    scheduler.requeue(task)
                    return False
                except Exception as exc:  # noqa: BLE001 - re-raised by run()
                    scheduler.fail(task)
                    sink.region_failed(task.key, task.session, exc)
                    runner.region_boundary()
                    continue
                if _transition(
                    scheduler, task, payload, sink, presplit=False
                ):
                    runner.region_boundary()
                continue
            budget = (
                policy.budget_for(task.key) if policy is not None else None
            )
            try:
                if budget is None:
                    payload = runner.region(task)
                else:
                    payload = runner.presplit(task, budget)
            except WorkerDeparted:
                scheduler.requeue(task)
                return False
            except Exception as exc:  # noqa: BLE001 - re-raised by run()
                scheduler.fail(task)
                sink.region_failed(task.key, task.session, exc)
                runner.region_boundary()
                continue
            if _transition(
                scheduler, task, payload, sink, presplit=budget is not None
            ):
                runner.region_boundary()
    finally:
        runner.drained()


def drive_futures(
    scheduler,
    submit: Callable[[RegionTask | ShardTask, int | None], Future],
    sink: ResultSink,
    workers: int,
    policy: ShardPolicy | None = None,
) -> None:
    """Parent-side dispatch over a future-returning transport.

    The same state machine as :func:`drive_stealing`, driven from a
    single dispatcher thread: units are acquired non-blockingly (the
    dispatcher is the only acquirer, so an empty poll really means
    nothing is runnable yet), shipped through ``submit`` (which returns
    a future -- e.g. ``ProcessPoolExecutor.submit`` of a pool wire
    function), and transitioned as their futures land.  ``submit``
    receives the unit and its shard budget (``None`` = crawl the region
    whole, an int = presplit it that finely).

    Used by the process backend's per-worker-copy rebalanced modes,
    where the pool workers cannot see the parent's scheduler.

    Examples
    --------
    ::

        def submit(task, budget):
            return pool.submit(crawl_region_in_worker, task)

        drive_futures(scheduler, submit, sink, workers=4)
    """
    in_flight: dict[Future, RegionTask | ShardTask] = {}

    def submit_next() -> bool:
        task = scheduler.acquire(block=False)
        if task is None:
            return False
        if isinstance(task, ShardTask) or policy is None:
            budget = None
        else:
            budget = policy.budget_for(task.key)
        in_flight[submit(task, budget)] = task
        return True

    for _ in range(workers):
        if not submit_next():
            break
    while in_flight:
        done, _ = wait(set(in_flight), return_when=FIRST_COMPLETED)
        for future in done:
            task = in_flight.pop(future)
            try:
                payload = future.result()
            except WorkerDeparted:
                # The worker is gone, not the unit: put it back on the
                # queue and let the refill below re-dispatch it to a
                # surviving pool slot.
                scheduler.requeue(task)
            except Exception as exc:  # noqa: BLE001 - re-raised by run()
                scheduler.fail(task)
                sink.region_failed(task.key, task.session, exc)
            else:
                presplit = (
                    policy is not None
                    and not isinstance(task, ShardTask)
                    and policy.budget_for(task.key) is not None
                )
                _transition(scheduler, task, payload, sink, presplit)
            while len(in_flight) < workers and submit_next():
                pass


def steal_setup(
    plan: PartitionPlan,
    estimator: CostEstimator | None,
    policy: ShardPolicy | None,
    completed: Mapping[RegionKey, int] | None = None,
) -> tuple[WorkStealingScheduler, int]:
    """Build the right scheduler for a rebalanced run.

    Returns ``(scheduler, upper)``: a two-level
    :class:`~repro.crawl.rebalance.SubtreeScheduler` whenever the
    policy presplits anything (subtree shards expose more parallelism
    than whole regions alone, so ``upper`` -- the number of workers the
    plan can keep busy -- grows accordingly), otherwise a plain
    :class:`~repro.crawl.rebalance.WorkStealingScheduler`.  The one
    place that decides between one- and two-level stealing, so the
    transports cannot drift apart in how they wire the loops.
    ``completed`` maps a resumed crawl's already-finished plan
    positions to their costs; the scheduler never queues them but
    seeds its estimator from their true costs.
    """
    if policy is not None and policy.sharded:
        scheduler: WorkStealingScheduler = SubtreeScheduler(
            plan.bundles, estimator, completed
        )
        upper = max(1, scheduler.total_tasks, policy.max_budget)
        return scheduler, upper
    scheduler = WorkStealingScheduler(plan.bundles, estimator, completed)
    return scheduler, max(1, scheduler.total_tasks)
