"""Attribute-ordering strategies (ablation support).

Every algorithm in the paper "works with an ordering of the attributes
in the underlying dataset (i.e., which attribute is A1, which one is A2,
and so on)" (Section 6).  The ordering changes nothing about
correctness, but it moves costs around: lazy-slice-cover prunes earlier
when small-domain attributes come first, and rank-shrink performs fewer
3-way splits when the leading attribute has many distinct values.

These helpers permute a dataset's columns -- categorical attributes stay
ahead of numeric ones so the mixed-space convention is preserved -- and
are exercised by ``benchmarks/bench_ablations.py``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError

__all__ = [
    "reorder_dataset",
    "order_by_domain_size",
    "order_by_distinct_count",
]


def reorder_dataset(dataset: Dataset, permutation: Sequence[int]) -> Dataset:
    """Apply a column permutation to a dataset.

    The permutation must keep every categorical attribute before every
    numeric one (the Section 1.1 convention); :class:`DataSpace`'s
    constructor enforces it.
    """
    d = dataset.dimensionality
    if sorted(permutation) != list(range(d)):
        raise SchemaError(
            f"permutation {list(permutation)} is not a permutation of 0..{d - 1}"
        )
    space = DataSpace(dataset.space[i] for i in permutation)
    rows = dataset.rows[:, list(permutation)]
    return Dataset(space, rows, name=dataset.name, validate=False)


def _blockwise_order(dataset: Dataset, key, ascending: bool) -> Dataset:
    """Sort the categorical block and the numeric block independently."""
    cat = dataset.space.cat
    d = dataset.dimensionality
    sign = 1 if ascending else -1

    def sort_block(indices: list[int]) -> list[int]:
        return sorted(indices, key=lambda j: (sign * key(j), j))

    permutation = sort_block(list(range(cat))) + sort_block(
        list(range(cat, d))
    )
    return reorder_dataset(dataset, permutation)


def order_by_domain_size(
    dataset: Dataset, *, ascending: bool = True
) -> Dataset:
    """Order categorical attributes by domain size ``U``.

    Numeric attributes (no finite ``U``) are ordered by their distinct
    counts so mixed datasets get a deterministic order too.
    """
    counts = dataset.distinct_counts()

    def key(j: int) -> int:
        attr = dataset.space[j]
        return attr.domain_size if attr.is_categorical else counts[j]

    return _blockwise_order(dataset, key, ascending)


def order_by_distinct_count(
    dataset: Dataset, *, ascending: bool = True
) -> Dataset:
    """Order attributes by the number of distinct values present."""
    counts = dataset.distinct_counts()
    return _blockwise_order(dataset, lambda j: counts[j], ascending)
