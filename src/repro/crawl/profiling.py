"""Public face of the profiling seam (``repro.crawl.profiling``).

Wall-clock phase breakdowns for the crawl hot path: where a
single-worker crawl actually spends its time, query by query.  Activate
with :func:`profile` (or the CLI's ``--profile`` flag) and every
instrumented site -- the caching client, the top-k server's engine
call, and the runtime's region units -- records into one shared
:class:`Profiler`:

* ``client.cache_hit`` / ``client.cache_miss`` -- response-cache
  traffic (counters);
* ``client.server_wait`` -- wall clock spent inside ``server.run``
  per cache miss;
* ``server.engine_top`` -- wall clock of the engine's top-k evaluation;
* ``runtime.region_unit`` / ``runtime.presplit`` / ``runtime.shard`` /
  ``runtime.merge`` -- region-unit phases of the execution runtime.

The seam is documented in ``docs/performance.md`` (hot-path anatomy)
and ``docs/architecture.md`` (what the determinism contract forbids it
from touching).  The implementation lives in
:mod:`repro.server.profiling` so the server stack can import it without
an import cycle; this module is the supported import path.

Examples
--------
>>> from repro.crawl import profiling
>>> profiling.active() is None
True
>>> with profiling.profile() as prof:
...     prof.record("server.engine_top", 0.002)
>>> prof.report()["phases"]["server.engine_top"]["calls"]
1
"""

from repro.server.profiling import (
    PhaseStat,
    Profiler,
    active,
    clock,
    profile,
)

__all__ = [
    "PhaseStat",
    "Profiler",
    "active",
    "clock",
    "profile",
]
