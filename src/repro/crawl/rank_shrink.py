"""``rank-shrink``: the paper's optimal algorithm for numeric spaces.

Sections 2.2 and 2.3 of the paper.  Given an overflowing query (a
rectangle of the data space), the algorithm looks at the ``k`` returned
tuples, takes the value ``x`` of the ``ceil(k/2)``-th smallest tuple on
the current split attribute, and

* **Case 1** (``c <= k/4`` tuples of the response equal ``x``): performs a
  2-way split at ``x`` -- both halves provably contain at least ``k/4``
  returned tuples, so neither can be "empty work";
* **Case 2** (``c > k/4``): performs a 3-way split at ``x`` -- the middle
  band pins the attribute to ``x`` (the attribute becomes *exhausted*),
  converting that branch into a (d-1)-dimensional sub-problem.

Splitting always happens on the first non-exhausted attribute, exactly
as in the paper's inductive construction.  Lemma 2 bounds the total
number of queries by ``O(d * n / k)``; Theorem 3 shows no algorithm can
do better by more than a constant factor.

The module-level :func:`solve_numeric` runs the recursion over an
arbitrary root rectangle and an arbitrary ordered set of splittable
attributes; the ``hybrid`` algorithm (Section 5) reuses it on numeric
subspaces whose categorical prefix has been pinned.

:func:`explore_numeric` is the *splittable front* over the same
recursion (see :mod:`repro.crawl.sharding`): it runs rank-shrink until
at least ``min_pending`` subtrees are pending and returns them, in the
exact order the sequential recursion would process them, so each can be
crawled independently (by any worker) and the results re-merged into a
byte-identical sequential result.
"""

from __future__ import annotations

from repro.crawl.base import Crawler
from repro.dataspace.space import SpaceKind
from repro.exceptions import InfeasibleCrawlError, SchemaError
from repro.query.query import Query

__all__ = ["RankShrink", "solve_numeric", "explore_numeric"]


def solve_numeric(
    crawler: Crawler,
    root_query: Query,
    dims: list[int],
    *,
    threshold_divisor: int = 4,
    tracer=None,
) -> None:
    """Extract every tuple matching ``root_query`` via rank-shrink.

    Parameters
    ----------
    crawler:
        The crawler whose client issues queries and collects tuples.
    root_query:
        The rectangle to extract; non-``dims`` predicates are inherited
        untouched by every refinement (hybrid pins categorical values
        there).
    dims:
        The splittable (numeric) attribute indices, in split order; the
        algorithm splits on ``dims[0]`` until exhausted, then ``dims[1]``,
        and so on -- the paper's inductive dimension reduction.
    threshold_divisor:
        The case threshold: a 2-way split needs ``c <= k / divisor``.
        The paper uses 4 (both cases then guarantee progress); other
        values are exposed for the ablation benchmark.
    tracer:
        Optional :class:`repro.theory.recursion_tree.RecursionTreeTracer`
        receiving the recursion-tree structure for analysis.
    """
    leftover = _drain_numeric(
        crawler,
        root_query,
        dims,
        threshold_divisor=threshold_divisor,
        tracer=tracer,
        min_pending=None,
    )
    assert not leftover  # min_pending=None drains the whole subtree


def explore_numeric(
    crawler: Crawler,
    root_query: Query,
    dims: list[int],
    *,
    threshold_divisor: int = 4,
    min_pending: int,
) -> list[Query]:
    """Run rank-shrink until ``min_pending`` subtrees are pending.

    The returned queries are the pending subtree roots **in the exact
    order the sequential recursion would process them** -- crawling each
    returned subtree to completion, one after another in list order,
    issues exactly the queries (and confirms exactly the rows, in the
    same order) that continuing :func:`solve_numeric` would have.  That
    equivalence is what the subtree-sharding executors build on (see
    :mod:`repro.crawl.sharding`); the queries are pairwise disjoint
    rectangles, so the sub-crawls share no state and may run anywhere.

    Returns an empty list when the subtree drains (resolves completely)
    before the frontier ever reaches ``min_pending`` -- the exploration
    then *was* the whole crawl.
    """
    if min_pending < 1:
        raise SchemaError(f"min_pending must be positive, got {min_pending}")
    return _drain_numeric(
        crawler,
        root_query,
        dims,
        threshold_divisor=threshold_divisor,
        tracer=None,
        min_pending=min_pending,
    )


def _drain_numeric(
    crawler: Crawler,
    root_query: Query,
    dims: list[int],
    *,
    threshold_divisor: int,
    tracer,
    min_pending: int | None,
) -> list[Query]:
    """The rank-shrink work loop, optionally stopping at a frontier.

    With ``min_pending=None`` the stack is drained completely (this is
    :func:`solve_numeric`).  Otherwise the loop stops as soon as at
    least ``min_pending`` entries are pending and returns them in pop
    (execution) order.
    """
    if threshold_divisor < 2:
        raise SchemaError(
            "threshold_divisor below 2 cannot guarantee progress"
        )
    k = crawler.k
    median_index = (k + 1) // 2 - 1  # 0-based rank of the ceil(k/2)-th tuple
    # Stack entries: (query, index into dims to resume scanning at, parent
    # tracer node, role of this query relative to its parent's split).
    stack: list[tuple[Query, int, object, str]] = [
        (root_query, 0, None, "root")
    ]
    while stack:
        if min_pending is not None and len(stack) >= min_pending:
            # The frontier is big enough: hand the pending subtrees
            # back in the order the sequential loop would pop them.
            return [entry[0] for entry in reversed(stack)]
        query, pos, parent, role = stack.pop()
        node = (
            tracer.enter(query, parent, role) if tracer is not None else None
        )
        response = crawler._run_query(query)
        if response.resolved:
            crawler._confirm(response.rows)
            if tracer is not None:
                tracer.mark_resolved(node)
            continue
        # Advance to the first attribute not yet exhausted on this query.
        while pos < len(dims) and query.is_exhausted(dims[pos]):
            pos += 1
        if pos == len(dims):
            point = tuple(
                p.lo if hasattr(p, "lo") else p.value for p in query.predicates
            )
            raise InfeasibleCrawlError(
                f"point query {query} overflowed: more than k={k} duplicate "
                "tuples at one point (Problem 1 unsolvable at this k)",
                point=point,  # type: ignore[arg-type]
            )
        dim = dims[pos]
        # The response of an overflowing query has exactly k tuples.
        values = sorted(row[dim] for row in response.rows)
        x = values[median_index]
        c = values.count(x)
        lo, _hi = query.extent(dim)
        two_way_possible = threshold_divisor * c <= k and not (
            lo is not None and x == lo
        )
        if two_way_possible:
            q_left, q_right = query.split_2way(dim, x)
            if tracer is not None:
                tracer.mark_split(node, "2way", dim, x)
            # Prefetch the shrink probe pair as one sibling battery, in
            # the order the stack would pop them; the pops then replay
            # the cached responses at zero cost.
            crawler._run_battery([q_left, q_right])
            stack.append((q_right, pos, node, "right"))
            stack.append((q_left, pos, node, "left"))
        else:
            q_left, q_mid, q_right = query.split_3way(dim, x)
            if tracer is not None:
                tracer.mark_split(node, "3way", dim, x)
            crawler._run_battery(
                [q for q in (q_mid, q_left, q_right) if q is not None]
            )
            if q_right is not None:
                stack.append((q_right, pos, node, "right"))
            if q_left is not None:
                stack.append((q_left, pos, node, "left"))
            # The middle band exhausts `dim`; the pos-advance loop will
            # move it on to the next dimension -- the (d-1)-dimensional
            # sub-problem of the paper.
            stack.append((q_mid, pos, node, "mid"))
    return []


class RankShrink(Crawler):
    """The optimal numeric-space crawler (paper Theorem 1, first bullet).

    Cost guarantee: ``O(d * n / k)`` queries, independent of the
    attribute domain sizes -- the decisive advantage over the
    ``binary-shrink`` baseline.
    """

    name = "rank-shrink"

    def __init__(
        self,
        source,
        *,
        max_queries: int | None = None,
        threshold_divisor: int = 4,
        tracer=None,
        batteries: bool = True,
    ):
        super().__init__(source, max_queries=max_queries, batteries=batteries)
        if self.space.kind is not SpaceKind.NUMERIC:
            raise SchemaError(
                "rank-shrink handles purely numeric spaces; use Hybrid for "
                f"{self.space.kind.value} spaces"
            )
        self._threshold_divisor = threshold_divisor
        self._tracer = tracer

    def frontier_entry(self) -> tuple[Query, tuple[int, ...]]:
        """The (root rectangle, split order) the crawl starts from.

        Exposed for the splittable front (:mod:`repro.crawl.sharding`),
        which seeds its exploration with exactly this entry.
        """
        return Query.full(self.space), tuple(range(self.space.dimensionality))

    def _execute(self) -> None:
        root, dims = self.frontier_entry()
        solve_numeric(
            self,
            root,
            list(dims),
            threshold_divisor=self._threshold_divisor,
            tracer=self._tracer,
        )
