"""Exception hierarchy for the hidden-database crawling library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the interesting cases:

* :class:`SchemaError` -- a data space, query, or dataset is malformed.
* :class:`InfeasibleCrawlError` -- the crawl provably cannot finish
  because some point of the data space holds more than ``k`` identical
  tuples (Problem 1 of the paper has no solution then; see Section 1.1).
* :class:`QueryBudgetExhausted` -- a query limit configured on the server
  or client was hit; the crawl may be resumed after the limit resets.
* :class:`AlgorithmInvariantError` -- an internal sanity check failed
  (for instance, a crawler exceeded its configured ``max_queries``); this
  always indicates a bug, never a property of the input.
* :class:`WorkerDeparted` -- a fleet worker left a running crawl; its
  in-flight work is re-queued, never lost (see
  :mod:`repro.crawl.rebalance`).
* :class:`RetryAfter` -- a service admission bound refused a submission;
  the job was *not* enqueued and may be resubmitted once the tenant's
  pending queue drains (see :mod:`repro.service.jobs`).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "UnboundedDomainError",
    "InfeasibleCrawlError",
    "QueryBudgetExhausted",
    "AlgorithmInvariantError",
    "WorkerDeparted",
    "RetryAfter",
    "WebProtocolError",
]


class ReproError(Exception):
    """Base class of all errors raised by :mod:`repro`."""


class SchemaError(ReproError, ValueError):
    """A data space, attribute, query or dataset violates the data model.

    Raised, for example, when a categorical value lies outside its
    domain ``[1, U]``, when a range predicate is applied to a categorical
    attribute, or when a mixed data space does not list its categorical
    attributes first (the paper's convention in Section 1.1).
    """


class UnboundedDomainError(SchemaError):
    """An operation needs finite attribute bounds but none are known.

    The ``binary-shrink`` baseline halves attribute extents, so it must
    know each numeric attribute's ``[lo, hi]`` bounds; its cost depends on
    the domain size, which is exactly the weakness Section 2.1 of the
    paper points out.  ``rank-shrink`` has no such requirement.
    """


class InfeasibleCrawlError(ReproError, RuntimeError):
    """The hidden database cannot be extracted in full.

    Problem 1 requires that no point of the data space holds more than
    ``k`` tuples: with ``k + 1`` identical tuples the server may forever
    withhold one of them.  Crawlers raise this error the moment they
    observe the proof -- a *point query* (every attribute pinned to a
    single value) that still overflows.  This mirrors the paper's remark
    that the Yahoo! Autos dataset cannot be crawled at ``k = 64`` because
    it contains more than 64 identical tuples (Section 6, Figure 12).
    """

    def __init__(self, message: str, *, point: tuple[int, ...] | None = None):
        super().__init__(message)
        #: The offending point of the data space, when known.
        self.point = point


class QueryBudgetExhausted(ReproError, RuntimeError):
    """A query budget or rate limit refused to admit another query.

    Attributes
    ----------
    issued:
        Number of queries admitted before the refusal.
    """

    def __init__(self, message: str, *, issued: int = 0):
        super().__init__(message)
        self.issued = issued


class AlgorithmInvariantError(ReproError, AssertionError):
    """An internal invariant of an algorithm was violated.

    Tests configure crawlers with ``max_queries`` derived from the
    Theorem 1 upper bounds; exceeding the cap means the implementation no
    longer enjoys its proven guarantee, and we fail loudly rather than
    loop.
    """


class WorkerDeparted(ReproError, RuntimeError):
    """A fleet worker left a running crawl (shutdown, preemption, kill).

    Raised *through* a worker's unit of work -- e.g. by a query source
    whose identity was revoked, or injected by a fault-tolerance
    harness -- to signal that the worker is gone, not that the unit is
    bad.  The drive loops react by re-queueing the in-flight unit on
    the scheduler (:meth:`~repro.crawl.rebalance.WorkStealingScheduler.
    requeue`) and flushing the worker's unreturned lease headroom, so a
    departure costs wall-clock time only -- the crawl still completes
    with full sequential parity and exact budget accounting.
    """


class RetryAfter(ReproError, RuntimeError):
    """A tenant's pending-job queue is full; the submission was refused.

    The refusal is *clean*: nothing was enqueued, no budget was charged,
    and no store row was written.  Callers should wait for the tenant's
    queue to drain (``JobManager.wait_for_slot``) and resubmit.

    Attributes
    ----------
    tenant:
        The tenant whose bound refused the submission, when known.
    depth:
        Number of jobs pending or running for the tenant at refusal time.
    bound:
        The configured per-tenant admission bound.
    """

    def __init__(
        self,
        message: str,
        *,
        tenant: str | None = None,
        depth: int = 0,
        bound: int = 0,
    ):
        super().__init__(message)
        self.tenant = tenant
        self.depth = depth
        self.bound = bound


class WebProtocolError(ReproError, RuntimeError):
    """The simulated web interface returned something unusable.

    Raised by the :mod:`repro.web` layer when a request is malformed
    (unknown parameter, non-integer value, inverted range) or when a
    page cannot be parsed back into structured data (missing search
    form, missing results table).  Carries the HTTP-like status code of
    the offending exchange when one applies.
    """

    def __init__(self, message: str, *, status: int | None = None):
        super().__init__(message)
        #: HTTP-like status code of the failed exchange, when known.
        self.status = status
