"""Result pages: rendering and scraping the server's response.

A hidden database answers a form submission with a dynamically
generated result page (the paper's Figure 1).  The page carries exactly
the information of a :class:`~repro.server.response.QueryResponse` and
no more:

* a table of the returned tuples (all of them when the query resolved,
  exactly ``k`` when it overflowed), and
* either a definite count ("*N records match your search*") or an
  overflow banner ("*more records match*") -- the one-bit overflow
  signal of Section 1.1.

:func:`render_result_page` produces the HTML; :func:`parse_result_page`
scrapes it back.  The pair is loss-less, so a crawler operating on HTML
sees byte-for-byte the same responses as one holding a direct server
handle -- which the adapter tests assert.
"""

from __future__ import annotations

import html
from html.parser import HTMLParser

from repro.dataspace.space import DataSpace
from repro.exceptions import WebProtocolError
from repro.server.response import QueryResponse, Row

__all__ = ["render_result_page", "parse_result_page", "render_error_page"]

#: Marker id of the overflow banner; its presence is the overflow bit.
_OVERFLOW_ID = "overflow-banner"


def render_result_page(space: DataSpace, response: QueryResponse) -> str:
    """The HTML page a site serves for one query's response."""
    lines = [
        "<!doctype html>",
        "<html><head><title>Search results</title></head><body>",
    ]
    if response.overflow:
        lines.append(
            f'<div id="{_OVERFLOW_ID}">Showing the first '
            f"{len(response.rows)} matching records; more records match "
            "your search. Please refine your criteria.</div>"
        )
    else:
        lines.append(
            f'<p id="result-count">{len(response.rows)} records match '
            "your search.</p>"
        )
    lines.append('<table id="results">')
    header = "".join(f"<th>{html.escape(a.name)}</th>" for a in space)
    lines.append(f"<thead><tr>{header}</tr></thead>")
    lines.append("<tbody>")
    for row in response.rows:
        cells = "".join(f"<td>{value}</td>" for value in row)
        lines.append(f"<tr>{cells}</tr>")
    lines.append("</tbody>")
    lines.append("</table>")
    lines.append("</body></html>")
    return "\n".join(lines)


def render_error_page(status: int, message: str) -> str:
    """The HTML page a site serves for a failed request."""
    return (
        "<!doctype html>\n"
        f"<html><head><title>Error {status}</title></head><body>\n"
        f'<h1 id="error">Error {status}</h1>\n'
        f"<p>{html.escape(message)}</p>\n"
        "</body></html>"
    )


def parse_result_page(page_html: str) -> QueryResponse:
    """Scrape a result page back into a :class:`QueryResponse`.

    Raises
    ------
    WebProtocolError
        If the page has no results table or a cell is not an integer.
    """
    parser = _ResultParser()
    parser.feed(page_html)
    parser.close()
    if not parser.saw_table:
        raise WebProtocolError("page contains no results table")
    widths = {len(row) for row in parser.rows}
    if len(widths) > 1:
        raise WebProtocolError(
            f"results table rows have inconsistent widths: {sorted(widths)}"
        )
    return QueryResponse(tuple(parser.rows), parser.overflow)


class _ResultParser(HTMLParser):
    """Extracts the results table and the overflow banner from HTML."""

    def __init__(self) -> None:
        super().__init__()
        self.rows: list[Row] = []
        self.overflow = False
        self.saw_table = False
        self._in_body = False
        self._cells: list[int] | None = None
        self._collect_cell = False
        self._cell_text: list[str] = []

    def handle_starttag(self, tag: str, attrs) -> None:
        attributes = dict(attrs)
        if tag == "div" and attributes.get("id") == _OVERFLOW_ID:
            self.overflow = True
        elif tag == "table" and attributes.get("id") == "results":
            self.saw_table = True
        elif tag == "tbody" and self.saw_table:
            self._in_body = True
        elif tag == "tr" and self._in_body:
            self._cells = []
        elif tag == "td" and self._cells is not None:
            self._collect_cell = True
            self._cell_text = []

    def handle_data(self, data: str) -> None:
        if self._collect_cell:
            self._cell_text.append(data)

    def handle_endtag(self, tag: str) -> None:
        if tag == "td" and self._collect_cell:
            raw = "".join(self._cell_text).strip()
            try:
                value = int(raw)
            except ValueError:
                raise WebProtocolError(
                    f"non-integer table cell {raw!r}"
                ) from None
            assert self._cells is not None
            self._cells.append(value)
            self._collect_cell = False
        elif tag == "tr" and self._cells is not None:
            self.rows.append(tuple(self._cells))
            self._cells = None
        elif tag == "tbody":
            self._in_body = False
