"""The simulated hidden-database website.

:class:`HiddenWebSite` is the outermost substrate of the reproduction:
it wraps a :class:`~repro.server.server.TopKServer` behind the two
endpoints a form-based hidden database exposes --

* ``GET /`` -- the search page, whose form advertises the schema, the
  categorical domains (pull-down menus) and the retrieval limit ``k``;
* ``GET /search?<query-string>`` -- the dynamically generated result
  page for one query.

Responses are plain HTML strings with an HTTP-like status code:

====== =======================================================
status meaning
====== =======================================================
200    a search or result page
400    malformed query string (unknown parameter, bad value)
404    unknown path
429    a query limit refused the request (retry after reset)
====== =======================================================

The site never leaks anything a real site would not: the crawler-facing
error page for a 400 carries the message, a 429 carries no detail, and
the hidden dataset itself is unreachable.
"""

from __future__ import annotations

from dataclasses import dataclass
from urllib.parse import urlsplit

from repro.exceptions import (
    QueryBudgetExhausted,
    SchemaError,
    WebProtocolError,
)
from repro.server.server import TopKServer
from repro.web.forms import SearchForm
from repro.web.pages import render_error_page, render_result_page
from repro.web.urls import decode_query

__all__ = ["WebPage", "HiddenWebSite"]


@dataclass(frozen=True, slots=True)
class WebPage:
    """One HTTP-like exchange: a status code and an HTML body."""

    status: int
    body: str

    @property
    def ok(self) -> bool:
        """``True`` iff the request succeeded."""
        return self.status == 200


class HiddenWebSite:
    """A form-based website fronting a hidden database.

    Parameters
    ----------
    server:
        The top-``k`` server holding the hidden content.
    advertise_bounds:
        When ``True``, numeric form inputs carry ``min``/``max``
        attributes from the schema's bounds metadata (some real sites
        constrain their inputs).  The parsed form then reconstructs a
        bounded schema, enabling ``binary-shrink`` over the web layer.
        Off by default: a numeric domain is conceptually unbounded and
        most sites say nothing.
    """

    def __init__(self, server: TopKServer, *, advertise_bounds: bool = False):
        self._server = server
        self._form = SearchForm.from_space(
            server.space, server.k, advertise_bounds=advertise_bounds
        )
        self._pages_served = 0
        self._search_page = (
            "<!doctype html>\n"
            "<html><head><title>Hidden Database Search</title></head><body>\n"
            "<h1>Hidden Database Search</h1>\n"
            + self._form.render()
            + "\n</body></html>"
        )

    # ------------------------------------------------------------------
    # The one entry point a crawler has
    # ------------------------------------------------------------------
    def get(self, url: str) -> WebPage:
        """Serve ``url`` (path plus optional query string)."""
        parts = urlsplit(url)
        self._pages_served += 1
        if parts.path in ("", "/"):
            return WebPage(200, self._search_page)
        if parts.path != "/search":
            return WebPage(404, render_error_page(404, "no such page"))
        try:
            query = decode_query(self._server.space, parts.query)
        except (WebProtocolError, SchemaError) as exc:
            return WebPage(400, render_error_page(400, str(exc)))
        try:
            response = self._server.run(query)
        except QueryBudgetExhausted:
            return WebPage(
                429, render_error_page(429, "query limit reached; try later")
            )
        return WebPage(200, render_result_page(self._server.space, response))

    # ------------------------------------------------------------------
    # Operator-side introspection
    # ------------------------------------------------------------------
    @property
    def pages_served(self) -> int:
        """Total requests handled (the provider-side burden)."""
        return self._pages_served

    def __repr__(self) -> str:
        return f"HiddenWebSite({self._server!r}, pages={self._pages_served})"
