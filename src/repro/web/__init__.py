"""The simulated web layer: forms, result pages, site and session.

The paper's problem is posed against a *web interface* (Figure 1): a
search form, a dynamically generated result page, a per-query result
cap.  The rest of this library works with the abstract query interface
of Section 1.1; this package supplies the missing outer layer so the
whole pipeline -- parse the form, learn the domains from the pull-down
menus, crawl by scraping result pages -- runs end to end:

* :class:`~repro.web.forms.SearchForm` -- the form a site serves, and
  the crawler-side parser that reconstructs the schema from it;
* :mod:`repro.web.urls` -- the query <-> query-string codec;
* :mod:`repro.web.pages` -- result-page rendering and scraping;
* :class:`~repro.web.site.HiddenWebSite` -- the website: ``GET /`` and
  ``GET /search?...`` over a :class:`~repro.server.server.TopKServer`;
* :class:`~repro.web.adapter.WebSession` -- the crawler-side session
  satisfying the :class:`~repro.server.interface.QueryInterface`
  protocol, so every crawler runs unchanged over HTML.
"""

from repro.web.adapter import WebSession
from repro.web.forms import RangeField, SearchForm, SelectField
from repro.web.pages import (
    parse_result_page,
    render_error_page,
    render_result_page,
)
from repro.web.site import HiddenWebSite, WebPage
from repro.web.urls import check_encodable, decode_query, encode_query

__all__ = [
    "WebSession",
    "RangeField",
    "SearchForm",
    "SelectField",
    "parse_result_page",
    "render_error_page",
    "render_result_page",
    "HiddenWebSite",
    "WebPage",
    "check_encodable",
    "decode_query",
    "encode_query",
]
