"""Query <-> URL query-string codec for the simulated web interface.

A hidden database's search form submits via ``GET``, so every query of
the paper's interface has a URL representation.  The encoding follows
how real form-based sites serialise their inputs:

* a categorical predicate ``Ai = c`` becomes ``<name>=<c>``; the
  wildcard ``Ai = *`` is simply *absent* (an untouched pull-down menu
  submits nothing);
* a numeric predicate ``Ai in [lo, hi]`` becomes ``<name>_min=<lo>``
  and/or ``<name>_max=<hi>``; an unbounded end is absent (an empty
  min/max input submits nothing).

The codec is loss-less: ``decode_query(space, encode_query(q)) == q``
for every valid query, which a hypothesis property test checks.

Attribute names are percent-encoded by :func:`urllib.parse.urlencode`,
so arbitrary names survive the round trip.  One genuine ambiguity
exists: a categorical attribute literally named ``price_min`` shadows
the ``min`` input of a numeric attribute named ``price``.  The decoder
resolves parameters by exact attribute name *first* and by
``_min``/``_max`` suffix second, mirroring how a server would bind form
fields; schemas that still collide are rejected up front.
"""

from __future__ import annotations

from urllib.parse import parse_qsl, urlencode

from repro.dataspace.space import DataSpace
from repro.exceptions import WebProtocolError
from repro.query.predicates import EqualityPredicate, RangePredicate
from repro.query.query import Query

__all__ = ["encode_query", "decode_query", "check_encodable"]

#: Suffixes of the two inputs a numeric attribute contributes to a form.
_MIN_SUFFIX = "_min"
_MAX_SUFFIX = "_max"


def check_encodable(space: DataSpace) -> None:
    """Reject schemas whose attribute names collide under the encoding.

    Raises
    ------
    WebProtocolError
        If some attribute is named exactly like another numeric
        attribute's ``_min``/``_max`` parameter (e.g. attributes
        ``price`` (numeric) and ``price_min``), which would make the
        query string ambiguous.
    """
    names = set(space.names)
    for attr in space:
        if not attr.is_numeric:
            continue
        for suffix in (_MIN_SUFFIX, _MAX_SUFFIX):
            shadow = attr.name + suffix
            if shadow in names:
                raise WebProtocolError(
                    f"attribute name {shadow!r} collides with the "
                    f"{suffix[1:]} form input of numeric attribute "
                    f"{attr.name!r}"
                )


def encode_query(query: Query) -> str:
    """Serialise ``query`` as the query string its form submission sends."""
    params: list[tuple[str, str]] = []
    for attr, pred in zip(query.space, query.predicates):
        if isinstance(pred, EqualityPredicate):
            if pred.value is not None:
                params.append((attr.name, str(pred.value)))
        else:
            assert isinstance(pred, RangePredicate)
            if pred.lo is not None:
                params.append((attr.name + _MIN_SUFFIX, str(pred.lo)))
            if pred.hi is not None:
                params.append((attr.name + _MAX_SUFFIX, str(pred.hi)))
    return urlencode(params)


def _parse_int(name: str, raw: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise WebProtocolError(
            f"parameter {name!r} carries non-integer value {raw!r}",
            status=400,
        ) from None


def decode_query(space: DataSpace, query_string: str) -> Query:
    """Rebuild the :class:`Query` a query string denotes.

    Parameters
    ----------
    space:
        The schema to bind parameters against (the server binds against
        its own schema; a crawler binds against the schema it parsed
        from the search form).
    query_string:
        The raw query string, without the leading ``?``.

    Raises
    ------
    WebProtocolError
        On unknown parameters, repeated parameters, non-integer values,
        or values a later :class:`~repro.query.query.Query` validation
        rejects (out-of-domain categorical values, inverted ranges).
    """
    check_encodable(space)
    exact = {attr.name: i for i, attr in enumerate(space)}
    query = Query.full(space)
    seen: set[str] = set()
    for name, raw in parse_qsl(query_string, keep_blank_values=True):
        if name in seen:
            raise WebProtocolError(
                f"parameter {name!r} appears more than once", status=400
            )
        seen.add(name)
        if raw == "":
            # An empty input submits a blank value on some browsers;
            # treat it as "left untouched".
            continue
        index = exact.get(name)
        if index is not None and space[index].is_categorical:
            query = query.with_value(index, _parse_int(name, raw))
            continue
        bound: str | None = None
        stem = name
        if name.endswith(_MIN_SUFFIX):
            bound, stem = "min", name[: -len(_MIN_SUFFIX)]
        elif name.endswith(_MAX_SUFFIX):
            bound, stem = "max", name[: -len(_MAX_SUFFIX)]
        index = exact.get(stem)
        if bound is None or index is None or not space[index].is_numeric:
            raise WebProtocolError(
                f"unknown search parameter {name!r}", status=400
            )
        value = _parse_int(name, raw)
        lo, hi = query.extent(index)
        if bound == "min":
            lo = value
        else:
            hi = value
        if lo is not None and hi is not None and lo > hi:
            raise WebProtocolError(
                f"inverted range on {stem!r}: [{lo}, {hi}]", status=400
            )
        query = query.with_range(index, lo, hi)
    return query
