"""The search form: how a hidden database advertises its interface.

The paper's Figure 1 shows the crawler-visible half of a hidden
database: an HTML form with one input per attribute -- a pull-down menu
(with an *Any* option) for each categorical attribute, and a min/max
input pair for each numeric one.  Section 1.3 notes that for many sites
the categorical domains "can be seen from the pull-down menu of its
query interface"; this module makes that observation executable:

* :meth:`SearchForm.from_space` builds the form a site serves for a
  given schema, and :meth:`SearchForm.render` emits its HTML;
* :meth:`SearchForm.parse` recovers a form from HTML, and
  :meth:`SearchForm.to_space` rebuilds the :class:`DataSpace` a crawler
  needs -- categorical domains are read off the menus exactly as the
  paper describes.

Numeric attributes are conceptually unbounded (their domain is all
integers), so by default the reconstructed schema carries no bounds --
which is precisely why ``binary-shrink`` (whose cost depends on domain
width) cannot even start from a parsed form, while ``rank-shrink``
can.  Sites that *do* constrain their inputs can be modelled with
``advertise_bounds=True``, which emits ``min=``/``max=`` attributes on
the number inputs and lets the parser recover them.
"""

from __future__ import annotations

import html
import re
from dataclasses import dataclass
from html.parser import HTMLParser

from repro.dataspace.attribute import Attribute, categorical, numeric
from repro.dataspace.space import DataSpace
from repro.exceptions import WebProtocolError
from repro.web.urls import check_encodable

__all__ = ["SelectField", "RangeField", "SearchForm"]

#: The option label shown for the wildcard choice of a pull-down menu.
_ANY_LABEL = "Any"


@dataclass(frozen=True, slots=True)
class SelectField:
    """A pull-down menu for one categorical attribute.

    ``values`` lists the integer domain values in menu order; the menu
    additionally offers the *Any* wildcard (an empty ``value``) first.
    """

    name: str
    values: tuple[int, ...]

    def render(self) -> str:
        """The ``<select>`` element (with its label) as HTML."""
        safe = html.escape(self.name, quote=True)
        lines = [
            f'<label for="{safe}">{html.escape(self.name)}</label>',
            f'<select name="{safe}" id="{safe}">',
            f'<option value="">{_ANY_LABEL}</option>',
        ]
        for value in self.values:
            lines.append(
                f'<option value="{value}">'
                f"{html.escape(self.name)} {value}</option>"
            )
        lines.append("</select>")
        return "\n".join(lines)

    def to_attribute(self) -> Attribute:
        """The categorical attribute this menu advertises.

        The menu enumerates the domain, so its size is simply the
        option count; values are validated to be exactly ``1 .. U``
        (the library's categorical encoding).
        """
        expected = tuple(range(1, len(self.values) + 1))
        if self.values != expected:
            raise WebProtocolError(
                f"menu {self.name!r} lists values {self.values}, expected "
                f"the contiguous encoding {expected}"
            )
        return categorical(self.name, len(self.values))


@dataclass(frozen=True, slots=True)
class RangeField:
    """The min/max input pair for one numeric attribute.

    ``lo``/``hi`` are the advertised input constraints when the site
    publishes them (``advertise_bounds=True``); ``None`` otherwise.
    """

    name: str
    lo: int | None = None
    hi: int | None = None

    def render(self) -> str:
        """The two ``<input type="number">`` elements as HTML."""
        safe = html.escape(self.name, quote=True)
        bounds = ""
        if self.lo is not None:
            bounds += f' min="{self.lo}"'
        if self.hi is not None:
            bounds += f' max="{self.hi}"'
        return "\n".join(
            [
                f'<label for="{safe}_min">{html.escape(self.name)}</label>',
                f'<input type="number" name="{safe}_min" id="{safe}_min"{bounds} />',
                f'<input type="number" name="{safe}_max" id="{safe}_max"{bounds} />',
            ]
        )

    def to_attribute(self) -> Attribute:
        """The numeric attribute this input pair advertises."""
        return numeric(self.name, self.lo, self.hi)


@dataclass(frozen=True)
class SearchForm:
    """A complete search form: ordered fields plus the result limit.

    The form is the public contract of a hidden database: everything a
    crawler is entitled to know (schema, categorical domains, the
    retrieval limit ``k``) is printed on it, and nothing else is.
    """

    fields: tuple[SelectField | RangeField, ...]
    k: int

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_space(
        cls, space: DataSpace, k: int, *, advertise_bounds: bool = False
    ) -> "SearchForm":
        """The form a site serves for ``space`` with retrieval limit ``k``."""
        check_encodable(space)
        fields: list[SelectField | RangeField] = []
        for attr in space:
            if attr.is_categorical:
                assert attr.domain_size is not None
                fields.append(
                    SelectField(
                        attr.name, tuple(range(1, attr.domain_size + 1))
                    )
                )
            elif advertise_bounds:
                fields.append(RangeField(attr.name, attr.lo, attr.hi))
            else:
                fields.append(RangeField(attr.name))
        return cls(tuple(fields), k)

    def to_space(self) -> DataSpace:
        """Rebuild the :class:`DataSpace` the form advertises."""
        return DataSpace(field.to_attribute() for field in self.fields)

    # ------------------------------------------------------------------
    # HTML
    # ------------------------------------------------------------------
    def render(self) -> str:
        """The search page's ``<form>`` element as HTML."""
        parts = ['<form action="/search" method="get" id="search-form">']
        for field in self.fields:
            parts.append('<div class="field">')
            parts.append(field.render())
            parts.append("</div>")
        parts.append('<button type="submit">Search</button>')
        parts.append("</form>")
        parts.append(
            f'<p id="result-limit">Each search returns at most '
            f"<strong>{self.k}</strong> results.</p>"
        )
        return "\n".join(parts)

    @classmethod
    def parse(cls, page_html: str) -> "SearchForm":
        """Recover the form from a search page.

        Raises
        ------
        WebProtocolError
            If the page has no search form, a menu has no *Any* option,
            or the result-limit notice is missing (a crawler cannot
            operate without knowing ``k``).
        """
        parser = _FormParser()
        parser.feed(page_html)
        parser.close()
        if not parser.saw_form:
            raise WebProtocolError("page contains no search form")
        match = re.search(
            r"at most\s*(?:<strong>)?(\d+)(?:</strong>)?\s*results",
            page_html,
        )
        if match is None:
            raise WebProtocolError(
                "page does not state the per-query result limit"
            )
        return cls(tuple(parser.fields), int(match.group(1)))


class _FormParser(HTMLParser):
    """Extracts select menus and min/max number-input pairs from HTML."""

    def __init__(self) -> None:
        super().__init__()
        self.fields: list[SelectField | RangeField] = []
        self.saw_form = False
        self._select_name: str | None = None
        self._select_values: list[int] = []
        self._pending_ranges: dict[str, RangeField] = {}

    def handle_starttag(self, tag: str, attrs) -> None:
        attributes = dict(attrs)
        if tag == "form":
            self.saw_form = True
        elif tag == "select":
            self._select_name = attributes.get("name", "")
            self._select_values = []
        elif tag == "option" and self._select_name is not None:
            raw = attributes.get("value", "")
            if raw:
                self._select_values.append(int(raw))
        elif tag == "input" and attributes.get("type") == "number":
            self._handle_number_input(attributes)

    def _handle_number_input(self, attributes: dict) -> None:
        name = attributes.get("name", "")
        for suffix in ("_min", "_max"):
            if not name.endswith(suffix):
                continue
            stem = name[: -len(suffix)]
            lo = attributes.get("min")
            hi = attributes.get("max")
            field = RangeField(
                stem,
                None if lo is None else int(lo),
                None if hi is None else int(hi),
            )
            if stem in self._pending_ranges:
                if self._pending_ranges[stem] != field:
                    raise WebProtocolError(
                        f"inconsistent min/max inputs for {stem!r}"
                    )
                self.fields.append(self._pending_ranges.pop(stem))
            else:
                self._pending_ranges[stem] = field
            return
        raise WebProtocolError(
            f"number input {name!r} is neither a _min nor a _max field"
        )

    def handle_endtag(self, tag: str) -> None:
        if tag == "select" and self._select_name is not None:
            self.fields.append(
                SelectField(self._select_name, tuple(self._select_values))
            )
            self._select_name = None
        elif tag == "form" and self._pending_ranges:
            missing = ", ".join(sorted(self._pending_ranges))
            raise WebProtocolError(f"unpaired min/max inputs for: {missing}")
