"""Crawler-side web session: HTML in, the abstract interface out.

:class:`WebSession` closes the loop of the web substrate.  Pointed at a
:class:`~repro.web.site.HiddenWebSite`, it

1. fetches the search page and parses the form, reconstructing the
   :class:`~repro.dataspace.space.DataSpace` (categorical domains come
   straight off the pull-down menus -- the paper's Section 1.3
   observation) and the retrieval limit ``k``;
2. answers :meth:`run` calls by encoding the query as a form
   submission, fetching the result page, and scraping it back into a
   :class:`~repro.server.response.QueryResponse`.

It therefore satisfies the exact protocol of
:class:`~repro.server.server.TopKServer` (``space``, ``k``, ``run``),
so every crawler in :mod:`repro.crawl` runs unchanged over HTML::

    site = HiddenWebSite(TopKServer(dataset, k=100))
    result = Hybrid(CachingClient(WebSession(site))).crawl()

The adapter tests assert the query-cost *and* the extracted bag are
identical to a direct crawl -- the web layer adds scraping, not
information.
"""

from __future__ import annotations

from repro.dataspace.space import DataSpace
from repro.exceptions import QueryBudgetExhausted, WebProtocolError
from repro.query.query import Query
from repro.server.response import QueryResponse
from repro.web.forms import SearchForm
from repro.web.pages import parse_result_page
from repro.web.site import HiddenWebSite
from repro.web.urls import encode_query

__all__ = ["WebSession"]


class WebSession:
    """A crawling session against a form-based website.

    Parameters
    ----------
    site:
        The website to crawl.  The constructor immediately fetches and
        parses the search page; a site without a readable form or a
        stated result limit is unusable and raises
        :class:`WebProtocolError` up front.
    """

    def __init__(self, site: HiddenWebSite):
        self._site = site
        page = site.get("/")
        if not page.ok:
            raise WebProtocolError(
                f"search page request failed with status {page.status}",
                status=page.status,
            )
        self._form = SearchForm.parse(page.body)
        self._space = self._form.to_space()
        self._requests = 0

    # ------------------------------------------------------------------
    # The TopKServer protocol
    # ------------------------------------------------------------------
    @property
    def space(self) -> DataSpace:
        """The schema reconstructed from the search form."""
        return self._space

    @property
    def k(self) -> int:
        """The retrieval limit stated on the search page."""
        return self._form.k

    def run(self, query: Query) -> QueryResponse:
        """Submit ``query`` through the form and scrape the result page.

        Raises
        ------
        QueryBudgetExhausted
            On a 429 response (the site's query limit refused us); the
            request may be retried after the limit resets.
        WebProtocolError
            On any other non-200 response or an unparseable page.
        """
        url = "/search?" + encode_query(query)
        page = self._site.get(url)
        self._requests += 1
        if page.status == 429:
            raise QueryBudgetExhausted(
                "site refused the query (HTTP 429)", issued=self._requests - 1
            )
        if not page.ok:
            raise WebProtocolError(
                f"search request failed with status {page.status}",
                status=page.status,
            )
        response = parse_result_page(page.body)
        for row in response.rows:
            if len(row) != self._space.dimensionality:
                raise WebProtocolError(
                    f"result row has {len(row)} cells, form advertised "
                    f"{self._space.dimensionality} attributes"
                )
        return response

    # ------------------------------------------------------------------
    @property
    def requests(self) -> int:
        """Search requests sent so far (excludes the form fetch)."""
        return self._requests

    @property
    def form(self) -> SearchForm:
        """The parsed search form (schema, domains, ``k``)."""
        return self._form

    def __repr__(self) -> str:
        return f"WebSession(k={self.k}, requests={self._requests})"
