"""CSV persistence for datasets (schema-carrying, round-trip safe).

Experiments should be reproducible from artefacts, not just from seeds;
these helpers write a dataset to a self-describing CSV whose header
encodes the schema, and read it back bit-for-bit.

Header encoding, one token per attribute:

* categorical: ``name:cat:U`` (domain size ``U``);
* numeric:     ``name:num`` or ``name:num:lo:hi`` when bounds are known.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.dataspace.attribute import Attribute, categorical, numeric
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError

__all__ = ["save_csv", "load_csv"]


def _encode_attribute(attr: Attribute) -> str:
    if attr.is_categorical:
        return f"{attr.name}:cat:{attr.domain_size}"
    if attr.lo is not None and attr.hi is not None:
        return f"{attr.name}:num:{attr.lo}:{attr.hi}"
    return f"{attr.name}:num"


def _decode_attribute(token: str) -> Attribute:
    parts = token.split(":")
    if len(parts) < 2:
        raise SchemaError(f"malformed attribute token {token!r}")
    name, kind = parts[0], parts[1]
    if kind == "cat":
        if len(parts) != 3:
            raise SchemaError(
                f"categorical token needs a domain size: {token!r}"
            )
        return categorical(name, int(parts[2]))
    if kind == "num":
        if len(parts) == 2:
            return numeric(name)
        if len(parts) == 4:
            return numeric(name, int(parts[2]), int(parts[3]))
        raise SchemaError(f"numeric token needs 0 or 2 bounds: {token!r}")
    raise SchemaError(f"unknown attribute kind {kind!r} in {token!r}")


def save_csv(dataset: Dataset, path: str | Path) -> Path:
    """Write the dataset (schema + rows) to ``path``; returns the path."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_encode_attribute(a) for a in dataset.space)
        for i in range(dataset.n):
            writer.writerow(int(v) for v in dataset.rows[i])
    return path


def load_csv(path: str | Path, *, name: str = "") -> Dataset:
    """Read a dataset previously written by :func:`save_csv`."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path} is empty") from None
        space = DataSpace(_decode_attribute(token) for token in header)
        rows = [[int(v) for v in line] for line in reader if line]
    matrix = (
        np.asarray(rows, dtype=np.int64)
        if rows
        else np.empty((0, space.dimensionality), dtype=np.int64)
    )
    return Dataset(space, matrix, name=name or path.stem)
