"""Adult-lookalike generators (the paper's UCI Adult dataset, Figure 9).

The paper uses the 45,222-tuple cleaned Adult census dataset with 14
attributes -- 8 categorical (domain sizes 2, 5, 6, 6, 7, 8, 14, 41) and
6 numeric -- plus *Adult-numeric*, its projection onto the numeric
attributes.  Attribute order follows Figure 9 left-to-right:

    Sex(2) Race(5) Rel(6) Edu(6) Marital(7) Wrk-class(8) Occ(14)
    Country(41) | Edu-num Age Wrk-hr Cap-loss Cap-gain Fnalwgt

The marginals are modelled on the public UCI data because they are what
the crawl costs depend on: Cap-gain/Cap-loss are ~zero for >90% of
tuples (tie-heavy -> occasional 3-way splits), Fnalwgt is heavy-tailed
with tens of thousands of distinct values (the attribute Figure 10b
ranks first by distinct count), Country/Race/Sex are dominated by one
value (so most of their slice queries overflow).
"""

from __future__ import annotations

import numpy as np

from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.datasets.synthetic import (
    clipped_normal_column,
    ensure_full_domain,
    lognormal_column,
    zero_inflated_column,
    zipf_column,
)

__all__ = ["ADULT_N", "adult", "adult_numeric"]

#: Cardinality of the cleaned Adult dataset used in the paper.
ADULT_N = 45222

_CATEGORICAL = [
    ("Sex", 2),
    ("Race", 5),
    ("Rel", 6),
    ("Edu", 6),
    ("Marital", 7),
    ("Wrk-class", 8),
    ("Occ", 14),
    ("Country", 41),
]
_NUMERIC = ["Edu-num", "Age", "Wrk-hr", "Cap-loss", "Cap-gain", "Fnalwgt"]


def _numeric_columns(rng: np.random.Generator, n: int) -> list[np.ndarray]:
    """The six numeric marginals, in Figure 9 order."""
    edu_num = clipped_normal_column(rng, n, mean=10.1, std=2.6, lo=1, hi=16)
    age = clipped_normal_column(rng, n, mean=38.5, std=13.2, lo=17, hi=90)
    # Working hours: a large spike at 40 plus a normal spread.
    wrk_hr = clipped_normal_column(rng, n, mean=40.9, std=12.0, lo=1, hi=99)
    spike = rng.random(n) < 0.46
    wrk_hr[spike] = 40
    cap_loss = zero_inflated_column(
        rng, n, zero_probability=0.953, mean=1900, std=400, lo=155, hi=4356
    )
    cap_gain = zero_inflated_column(
        rng, n, zero_probability=0.916, mean=8000, std=12000, lo=114, hi=99999
    )
    fnalwgt = lognormal_column(
        rng, n, mean=12.05, sigma=0.55, lo=12285, hi=1484705
    )
    return [edu_num, age, wrk_hr, cap_loss, cap_gain, fnalwgt]


def _categorical_columns(rng: np.random.Generator, n: int) -> list[np.ndarray]:
    """The eight categorical marginals, in Figure 9 order.

    Skew parameters follow the public data's flavour: Sex ~2:1, Race and
    Country dominated by one value, occupations fairly spread.
    """
    columns = []
    skews = {
        "Sex": 0.85,
        "Race": 1.8,
        "Rel": 0.8,
        "Edu": 0.7,
        "Marital": 0.9,
        "Wrk-class": 1.6,
        "Occ": 0.35,
        "Country": 2.4,
    }
    for name, size in _CATEGORICAL:
        column = zipf_column(rng, n, size, s=skews[name])
        if n >= size:
            column = ensure_full_domain(rng, column, size)
        columns.append(column)
    return columns


def adult(n: int = ADULT_N, *, seed: int = 11) -> Dataset:
    """The mixed Adult lookalike (8 categorical + 6 numeric attributes).

    The numeric block is drawn before the categorical one so that, for
    a given seed, it is bit-identical to :func:`adult_numeric` -- the
    paper's Adult-numeric is literally the numeric projection of Adult.
    """
    rng = np.random.default_rng(seed)
    numeric_cols = _numeric_columns(rng, n)
    columns = _categorical_columns(rng, n) + numeric_cols
    space = DataSpace.mixed(_CATEGORICAL, _NUMERIC)
    matrix = np.column_stack(columns).astype(np.int64)
    return Dataset(space, matrix, name="Adult", validate=False)


def adult_numeric(n: int = ADULT_N, *, seed: int = 11) -> Dataset:
    """Adult-numeric: only the six numeric attributes (same marginals).

    The paper: "We also extracted a numeric dataset from Adult, by
    including only its numeric attributes.  The resulting dataset ...
    has the same cardinality and dimensionality [d = 6]."
    """
    rng = np.random.default_rng(seed)
    columns = _numeric_columns(rng, n)
    space = DataSpace.numeric(len(_NUMERIC), names=_NUMERIC)
    matrix = np.column_stack(columns).astype(np.int64)
    return Dataset(space, matrix, name="Adult-numeric", validate=False)
