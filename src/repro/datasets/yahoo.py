"""Yahoo!-Autos-lookalike generator (the paper's autos.yahoo.com crawl).

The paper's Yahoo dataset: 69,768 tuples, 6 attributes (Figure 9)

    Owner(2) Body-style(7) Make(85) | Mileage Year Price

Key reproduced features:

* mixed space with a 3-attribute categorical prefix whose small domains
  mostly overflow, so ``hybrid`` spends its queries in the rank-shrink
  sub-crawls over (Mileage, Year, Price);
* correlated numerics -- price falls with age and mileage around a
  make-dependent base price -- giving realistic clustering;
* **a point with more than 64 identical tuples** (a dealer listing a
  fleet of brand-new identical cars).  The paper: "there is no reported
  value for Yahoo at k = 64 because it has more than 64 identical
  tuples ... no algorithm can successfully extract the dataset in full
  when k = 64."  We plant 100 copies, so ``min_feasible_k() == 100``:
  crawls fail at k = 64 and succeed from k = 128 up.
"""

from __future__ import annotations

import numpy as np

from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.datasets.synthetic import ensure_full_domain, zipf_column

__all__ = ["YAHOO_N", "YAHOO_DUPLICATES", "yahoo_autos"]

#: Cardinality of the paper's Yahoo! Autos dataset.
YAHOO_N = 69768

#: Copies of the identical fleet tuple (makes k = 64 infeasible).
YAHOO_DUPLICATES = 100

_CATEGORICAL = [("Owner", 2), ("Body-style", 7), ("Make", 85)]
_NUMERIC = ["Mileage", "Year", "Price"]


def yahoo_autos(
    n: int = YAHOO_N, *, seed: int = 5, duplicates: int = YAHOO_DUPLICATES
) -> Dataset:
    """The mixed Yahoo! Autos lookalike.

    ``duplicates`` identical tuples are planted at one point (0 disables
    the plant and makes the dataset crawlable at any ``k >=`` the
    residual maximum multiplicity).
    """
    rng = np.random.default_rng(seed)
    body = n - duplicates

    owner = zipf_column(rng, body, 2, s=1.2)
    body_style = zipf_column(rng, body, 7, s=0.9)
    make = zipf_column(rng, body, 85, s=1.1)

    year = np.clip(
        np.rint(2012 - rng.exponential(scale=4.5, size=body)), 1985, 2012
    ).astype(np.int64)
    age = 2012 - year
    mileage = np.clip(
        np.rint(
            age * rng.normal(11500, 3500, size=body)
            + rng.normal(0, 4000, size=body)
        ),
        0,
        300000,
    ).astype(np.int64)
    # Make-dependent base price decaying ~12% per year of age.
    base_price = 12000 + 900.0 * (make % 40)
    price = np.clip(
        np.rint(base_price * 0.88**age * rng.lognormal(0.0, 0.25, size=body)),
        500,
        95000,
    ).astype(np.int64)

    columns = [
        ensure_full_domain(rng, owner, 2) if body >= 2 else owner,
        ensure_full_domain(rng, body_style, 7) if body >= 7 else body_style,
        ensure_full_domain(rng, make, 85) if body >= 85 else make,
        mileage,
        year,
        price,
    ]
    matrix = np.column_stack(columns).astype(np.int64)

    if duplicates:
        # The fleet: one dealer, identical brand-new cars.
        fleet_row = np.asarray([[1, 1, 3, 0, 2012, 28990]], dtype=np.int64)
        matrix = np.vstack([matrix, np.repeat(fleet_row, duplicates, axis=0)])

    space = DataSpace.mixed(_CATEGORICAL, _NUMERIC)
    return Dataset(space, matrix, name="Yahoo", validate=False)
