"""The adversarial instances behind the paper's lower bounds (Section 4).

* :func:`theorem3_instance` -- the hard *numeric* dataset of Figure 7:
  ``m`` groups, each with ``k`` identical *diagonal* tuples at
  ``(i, .., i)`` plus ``d`` *non-diagonal* tuples bumping one coordinate
  to ``i + 1``.  Any correct algorithm needs at least ``d*m`` queries
  (Theorem 3), because each non-diagonal point must be covered by its
  own resolved query (Lemma 5).

* :func:`theorem4_instance` -- the hard *categorical* dataset of
  Figure 8: ``U`` groups of ``d`` tuples; group ``i``'s ``j``-th tuple
  takes value ``(i+1) mod U`` on attribute ``Aj`` and ``i`` elsewhere
  (shifted into our ``1 .. U`` domains).  With ``d = 2k`` and
  ``d U^2 <= 2^(d/4)``, any correct algorithm needs ``Omega(d U^2)``
  queries (Theorem 4).

Both constructors return the dataset plus the metadata the verification
harnesses need (the non-diagonal points, group structure).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError

__all__ = [
    "HardNumericInstance",
    "HardCategoricalInstance",
    "theorem3_instance",
    "theorem4_instance",
]


@dataclass(frozen=True)
class HardNumericInstance:
    """The Theorem 3 instance and its adversarial structure."""

    dataset: Dataset
    k: int
    d: int
    m: int
    #: The ``d*m`` points whose tuples force distinct resolved queries.
    non_diagonal_points: tuple[tuple[int, ...], ...]

    @property
    def lower_bound(self) -> int:
        """``d * m``: Theorem 3's query floor for any correct algorithm."""
        return self.d * self.m


@dataclass(frozen=True)
class HardCategoricalInstance:
    """The Theorem 4 instance and its parameters."""

    dataset: Dataset
    k: int
    d: int
    U: int

    @property
    def n(self) -> int:
        """``d * U`` tuples."""
        return self.dataset.n


def theorem3_instance(k: int, d: int, m: int) -> HardNumericInstance:
    """Build the hard numeric dataset of Figure 7.

    Parameters must satisfy ``d <= k`` (the theorem's requirement) and
    be positive.  The data space is ``[1, m+1]^d``; the dataset has
    ``n = m * (k + d)`` tuples.
    """
    if d > k:
        raise SchemaError(f"Theorem 3 requires d <= k, got d={d} > k={k}")
    if min(k, d, m) < 1:
        raise SchemaError("k, d, m must be positive")
    rows = []
    non_diagonal = []
    for i in range(1, m + 1):
        diagonal = [i] * d
        rows.extend([diagonal] * k)
        for j in range(d):
            bumped = list(diagonal)
            bumped[j] = i + 1
            rows.append(bumped)
            non_diagonal.append(tuple(bumped))
    space = DataSpace.numeric(d, bounds=[(1, m + 1)] * d)
    dataset = Dataset(
        space,
        np.asarray(rows, dtype=np.int64),
        name=f"hard-numeric(k={k},d={d},m={m})",
    )
    return HardNumericInstance(
        dataset=dataset,
        k=k,
        d=d,
        m=m,
        non_diagonal_points=tuple(non_diagonal),
    )


def theorem4_instance(
    k: int, U: int, *, enforce_conditions: bool = True
) -> HardCategoricalInstance:
    """Build the hard categorical dataset of Figure 8 with ``d = 2k``.

    The paper's values live in ``{0, .., U-1}``; we shift them to our
    ``1 .. U`` categorical domains, which is harmless because the value
    ordering of a categorical attribute is irrelevant.

    Parameters
    ----------
    enforce_conditions:
        When ``True`` (default), reject parameters violating Theorem 4's
        side conditions (``U >= 3``, ``k >= 3``, ``d U^2 <= 2^(d/4)``).
        Benchmarks may disable this to sweep slightly outside the proven
        regime.
    """
    d = 2 * k
    if enforce_conditions:
        if U < 3 or k < 3:
            raise SchemaError(
                f"Theorem 4 requires U >= 3 and k >= 3, got U={U}, k={k}"
            )
        if d * U * U > 2 ** (d / 4):
            raise SchemaError(
                f"Theorem 4 requires d*U^2 <= 2^(d/4); got {d * U * U} > "
                f"{2 ** (d / 4):.0f} (increase k or decrease U)"
            )
    rows = []
    for group in range(U):  # the paper's group index i in [0, U-1]
        bumped_value = (group + 1) % U
        for j in range(d):
            row = [group + 1] * d  # shift 0-based values into 1..U
            row[j] = bumped_value + 1
            rows.append(row)
    space = DataSpace.categorical([U] * d)
    dataset = Dataset(
        space,
        np.asarray(rows, dtype=np.int64),
        name=f"hard-categorical(k={k},U={U})",
    )
    return HardCategoricalInstance(dataset=dataset, k=k, d=d, U=U)
