"""Dataset generators: paper lookalikes, hard instances, worked examples.

The raw crawls behind the paper's experiments (Yahoo! Autos, NSF awards,
UCI Adult) are not distributed; the generators here rebuild datasets
matching their schemas, cardinalities, domain sizes, skew and duplicate
structure -- the features the query costs depend on.  See DESIGN.md
Section 3 for the substitution rationale.
"""

from repro.datasets.adult import ADULT_N, adult, adult_numeric
from repro.datasets.hard import (
    HardCategoricalInstance,
    HardNumericInstance,
    theorem3_instance,
    theorem4_instance,
)
from repro.datasets.io import load_csv, save_csv
from repro.datasets.nsf import NSF_DOMAIN_SIZES, NSF_N, nsf
from repro.datasets.paper_examples import (
    FIGURE3_K,
    FIGURE4_K,
    FIGURE5_K,
    figure3_dataset,
    figure3_server,
    figure4_dataset,
    figure4_server,
    figure5_dataset,
    figure5_server,
)
from repro.datasets.synthetic import (
    clipped_normal_column,
    ensure_full_domain,
    lognormal_column,
    random_dataset,
    zero_inflated_column,
    zipf_column,
)
from repro.datasets.yahoo import YAHOO_DUPLICATES, YAHOO_N, yahoo_autos

__all__ = [
    "ADULT_N",
    "adult",
    "adult_numeric",
    "HardCategoricalInstance",
    "HardNumericInstance",
    "theorem3_instance",
    "theorem4_instance",
    "load_csv",
    "save_csv",
    "NSF_DOMAIN_SIZES",
    "NSF_N",
    "nsf",
    "FIGURE3_K",
    "FIGURE4_K",
    "FIGURE5_K",
    "figure3_dataset",
    "figure3_server",
    "figure4_dataset",
    "figure4_server",
    "figure5_dataset",
    "figure5_server",
    "clipped_normal_column",
    "ensure_full_domain",
    "lognormal_column",
    "random_dataset",
    "zero_inflated_column",
    "zipf_column",
    "YAHOO_DUPLICATES",
    "YAHOO_N",
    "yahoo_autos",
]
