"""NSF-lookalike generator (the paper's nsf.gov/awardsearch crawl).

The paper's NSF dataset: 47,816 tuples, 9 categorical attributes with
domain sizes (Figure 9, left to right)

    Amnt(5) Instru(8) Field(49) PI-state(58) NSF-org(58) Prog-mgr(654)
    City(1093) PI-org(3110) PI-name(29042)

Three structural features drive the categorical crawl costs (Figure 11)
and are reproduced here:

* **Marginal skew**: each attribute's mass concentrates on few values
  (popular funding brackets, CS/Bio fields, California), so even
  attributes whose *average* per-value count exceeds ``k`` have long
  tails of slice queries that resolve -- the asymmetry lazy-slice-cover
  exploits.
* **Hierarchical concentration**: awards are generated *per
  organisation*.  A large university holds thousands of awards sharing
  state, city and organisation, and (because organisations specialise)
  concentrating on few fields, NSF divisions and program managers.
  Deep data-space-tree prefixes therefore still hold more than ``k``
  tuples, which is exactly what makes plain DFS fan out into the huge
  City/PI-org/PI-name domains while the slice table prunes them.
* **Functional dependencies**: org -> city -> state, field -> NSF-org;
  PIs belong to one organisation.

Full-domain coverage ("distinct values == domain size", as the paper
reports) is enforced whenever ``n`` permits.
"""

from __future__ import annotations

import numpy as np

from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.datasets.synthetic import ensure_full_domain, zipf_column

__all__ = ["NSF_N", "NSF_DOMAIN_SIZES", "nsf"]

#: Cardinality of the paper's NSF dataset.
NSF_N = 47816

#: Figure 9 domain sizes, in attribute order.
NSF_DOMAIN_SIZES = (5, 8, 49, 58, 58, 654, 1093, 3110, 29042)

_NAMES = (
    "Amnt",
    "Instru",
    "Field",
    "PI-state",
    "NSF-org",
    "Prog-mgr",
    "City",
    "PI-org",
    "PI-name",
)

#: Deterministic hash for functional dependencies between domains.
_MULT = 2654435761


def _derive(source: np.ndarray, domain_size: int, salt: int) -> np.ndarray:
    """Map each source value to a fixed target value (pure function)."""
    return (source * _MULT + salt) % domain_size + 1


def _skewed_map(
    source_domain: int, target_domain: int, *, salt: int, s: float
) -> np.ndarray:
    """A fixed source->target value map with a zipf-skewed image.

    Unlike the uniform hash of :func:`_derive`, popular targets attract
    many source values (big cities host many organisations, popular
    fields many specialisations), so the *marginal* of the derived
    column keeps a heavy head and -- crucially for slice-query pruning --
    a thin tail of rare values.
    """
    rng = np.random.default_rng(salt)
    ranks = np.arange(1, target_domain + 1, dtype=np.float64)
    weights = ranks**-s
    weights /= weights.sum()
    permuted = rng.permutation(target_domain) + 1
    draws = rng.choice(target_domain, size=source_domain, p=weights)
    return permuted[draws].astype(np.int64)


def _apply_map(mapping: np.ndarray, source: np.ndarray) -> np.ndarray:
    """Apply a 1-based value map to a 1-based column."""
    return mapping[source - 1]


def _mix(
    rng: np.random.Generator,
    preferred: np.ndarray,
    alternative: np.ndarray,
    preference: float,
) -> np.ndarray:
    """Choose the preferred value with the given probability, else the
    alternative -- a concentration knob for specialisation effects."""
    take_preferred = rng.random(len(preferred)) < preference
    return np.where(take_preferred, preferred, alternative).astype(np.int64)


def nsf(n: int = NSF_N, *, seed: int = 23) -> Dataset:
    """The categorical NSF lookalike (9 attributes, Figure 9 sizes)."""
    rng = np.random.default_rng(seed)
    sizes = dict(zip(_NAMES, NSF_DOMAIN_SIZES))

    # --- the organisation hierarchy -----------------------------------
    # Awards are drawn per organisation (zipf: a few huge universities,
    # a long tail); the org determines city and state; PIs are org-local
    # with a skewed number of awards each.
    org = zipf_column(rng, n, sizes["PI-org"], s=0.62)
    org_to_city = _skewed_map(sizes["PI-org"], sizes["City"], salt=211, s=1.0)
    city = _apply_map(org_to_city, org)
    city_to_state = _skewed_map(
        sizes["City"], sizes["PI-state"], salt=307, s=1.0
    )
    state = _apply_map(city_to_state, city)
    pi_local = zipf_column(rng, n, 24, s=1.05)  # per-org PI pool
    pi_name = ((org * _MULT + pi_local * 7919) % sizes["PI-name"] + 1).astype(
        np.int64
    )

    # --- the programmatic hierarchy -----------------------------------
    # Organisations specialise: most of an org's awards fall in its
    # preferred field (popular fields attract more organisations);
    # fields determine the NSF division and concentrate on few managers.
    field_global = zipf_column(rng, n, sizes["Field"], s=1.1)
    org_to_field = _skewed_map(
        sizes["PI-org"], sizes["Field"], salt=401, s=1.2
    )
    field = _mix(rng, _apply_map(org_to_field, org), field_global, 0.55)
    field_to_division = _skewed_map(
        sizes["Field"], sizes["NSF-org"], salt=503, s=0.9
    )
    nsf_org = _mix(
        rng,
        _apply_map(field_to_division, field),
        zipf_column(rng, n, sizes["NSF-org"], s=1.0),
        0.85,
    )
    mgr_in_field = zipf_column(rng, n, 40, s=0.5)  # managers per field
    prog_mgr = (
        (field * _MULT + mgr_in_field * 104729) % sizes["Prog-mgr"] + 1
    ).astype(np.int64)

    # --- the remaining marginals ---------------------------------------
    # Funding brackets are spread (flat-ish zipf); the instrument is
    # largely determined by the field (most awards of a field use its
    # usual instrument), thinning the joint (Amnt, Instru, Field)
    # distribution: few triples hold more than ~k tuples, so the tree's
    # internal mass sits deep, where the domains are large.
    amnt = zipf_column(rng, n, sizes["Amnt"], s=0.35)
    instru = _mix(
        rng,
        _derive(field, sizes["Instru"], salt=601),
        zipf_column(rng, n, sizes["Instru"], s=0.8),
        0.75,
    )

    columns = {
        "Amnt": amnt,
        "Instru": instru,
        "Field": field,
        "PI-state": state,
        "NSF-org": nsf_org,
        "Prog-mgr": prog_mgr,
        "City": city,
        "PI-org": org,
        "PI-name": pi_name,
    }
    # Full-domain coverage is a property of the paper's full dataset; a
    # scaled-down instance cannot realise domains larger than itself
    # (mirroring the paper's own sampled datasets in Figure 11c).
    ordered = [
        ensure_full_domain(rng, columns[name], sizes[name])
        if n >= sizes[name]
        else columns[name]
        for name in _NAMES
    ]
    space = DataSpace.categorical(list(NSF_DOMAIN_SIZES), names=list(_NAMES))
    matrix = np.column_stack(ordered).astype(np.int64)
    return Dataset(space, matrix, name="NSF", validate=False)
