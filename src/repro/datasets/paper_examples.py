"""The paper's worked examples (Figures 3-6), down to the exact responses.

The running examples of Sections 2 and 3 specify not just datasets but
the precise tuples the server returns (which depend on the random tuple
priorities).  We reconstruct both: datasets matching the figures and
priority vectors that reproduce the narrated responses, so the unit
tests can assert the algorithms perform the exact query sequences the
paper walks through.

* Figure 3 (1-d numeric, ``k = 4``): eight tuples; rank-shrink resolves
  the dataset with queries ``q1 .. q6`` -- a 3-way split at 55 followed
  by a 2-way split at 20.
* Figure 4 (2-d numeric, ``k = 4``): ten tuples; a 3-way split on
  ``A1 = 80`` whose middle band becomes a 1-d sub-problem costing
  exactly 3 queries.  (The figure's geometry is approximate; we fix
  concrete coordinates consistent with the narration -- see the module
  test for the trace.)
* Figure 5/6 (2-d categorical, ``k = 3``): ten tuples in a ``4 x 4``
  space; the slice-query lookup table of Figure 6 and the extended-DFS
  walk that issues no query beyond the slice table.
"""

from __future__ import annotations

import numpy as np

from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.server.server import TopKServer

__all__ = [
    "figure3_dataset",
    "figure3_server",
    "figure4_dataset",
    "figure4_server",
    "figure5_dataset",
    "figure5_server",
    "FIGURE3_K",
    "FIGURE4_K",
    "FIGURE5_K",
]

FIGURE3_K = 4
FIGURE4_K = 4
FIGURE5_K = 3


def figure3_dataset() -> Dataset:
    """The 1-d dataset of Figure 3a: values 10..55 with a triple at 55."""
    space = DataSpace.numeric(1)
    values = [10, 20, 30, 35, 45, 55, 55, 55]  # t1 .. t8
    rows = np.asarray([[v] for v in values], dtype=np.int64)
    return Dataset(space, rows, name="paper-figure-3")


def figure3_server(**kwargs) -> TopKServer:
    """A server reproducing the Figure 3 narration.

    Priorities make the first response ``R1 = {t4, t6, t7, t8}`` and the
    response to ``(-inf, 54]`` equal ``R2 = {t1, t2, t4, t5}``.
    """
    #                 t1  t2  t3  t4  t5  t6  t7  t8
    priorities = [6, 5, 1, 10, 4, 9, 8, 7]
    return TopKServer(
        figure3_dataset(), FIGURE3_K, priorities=priorities, **kwargs
    )


def figure4_dataset() -> Dataset:
    """A 2-d dataset realising the Figure 4 narration (k = 4).

    Five tuples sit on the line ``A1 = 80`` (so the middle band of the
    first split overflows and becomes a 1-d sub-problem), and the left
    part splits 2-way at ``A1 = 40``.
    """
    space = DataSpace.numeric(2)
    rows = np.asarray(
        [
            [10, 60],  # t1
            [20, 35],  # t2
            [45, 70],  # t3
            [40, 40],  # t4
            [60, 20],  # t5
            [80, 10],  # t6
            [80, 20],  # t7
            [80, 30],  # t8
            [80, 40],  # t9
            [80, 50],  # t10
        ],
        dtype=np.int64,
    )
    return Dataset(space, rows, name="paper-figure-4")


def figure4_server(**kwargs) -> TopKServer:
    """A server reproducing the Figure 4 narration.

    * ``q1`` (everything) returns ``{t4, t7, t8, t9}`` -> 3-way split at
      ``A1 = 80``;
    * ``q2`` (``A1 <= 79``) returns ``{t2, t3, t4, t5}`` -> 2-way split
      at ``A1 = 40``;
    * the 1-d sub-problem on ``A1 = 80`` returns ``{t6, t7, t8, t9}``
      and costs exactly 3 queries.
    """
    #                 t1  t2  t3  t4  t5  t6  t7  t8  t9  t10
    priorities = [1, 6, 5, 10, 4, 3, 9, 8, 7, 2]
    return TopKServer(
        figure4_dataset(), FIGURE4_K, priorities=priorities, **kwargs
    )


def figure5_dataset() -> Dataset:
    """The categorical dataset of Figure 5a: 10 tuples in a 4x4 space.

    ``t9`` duplicates ``t8`` at point ``(3, 3)`` -- the figure writes
    "t8 (t9)" -- exercising bag semantics.
    """
    space = DataSpace.categorical([4, 4])
    rows = np.asarray(
        [
            [1, 1],  # t1
            [1, 2],  # t2
            [1, 3],  # t3
            [1, 4],  # t4
            [2, 4],  # t5
            [3, 1],  # t6
            [3, 2],  # t7
            [3, 3],  # t8
            [3, 3],  # t9 (duplicate of t8)
            [4, 2],  # t10
        ],
        dtype=np.int64,
    )
    return Dataset(space, rows, name="paper-figure-5")


def figure5_server(**kwargs) -> TopKServer:
    """A server over the Figure 5 dataset with ``k = 3``.

    The Figure 6 lookup table is priority-independent (which tuples a
    resolved slice returns does not depend on priorities), so the
    default seeded priorities suffice.
    """
    return TopKServer(figure5_dataset(), FIGURE5_K, **kwargs)
