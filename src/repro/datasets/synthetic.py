"""Reusable synthetic-distribution helpers for dataset generators.

The paper's experiments use crawls of real sites (Yahoo! Autos, NSF
awards, UCI Adult).  Those raw crawls are not distributed, so the
generators in this package rebuild datasets with the same schema,
cardinality, domain sizes and the distributional features the crawl
costs depend on: value skew (how many slice queries overflow), duplicate
structure (feasibility thresholds), and distinct-value richness (how
often rank-shrink needs 3-way splits).

Everything is driven by an explicit :class:`numpy.random.Generator`, so
datasets are reproducible from a seed.
"""

from __future__ import annotations

import numpy as np

from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError

__all__ = [
    "zipf_column",
    "clipped_normal_column",
    "zero_inflated_column",
    "lognormal_column",
    "ensure_full_domain",
    "random_dataset",
]


def zipf_column(
    rng: np.random.Generator, n: int, domain_size: int, s: float = 1.0
) -> np.ndarray:
    """``n`` draws from a Zipf-like distribution over ``1 .. domain_size``.

    Value ``v`` gets probability proportional to ``1 / rank(v)^s`` with a
    random rank assignment, so the popular values are scattered through
    the domain rather than always being the small integers.
    """
    ranks = np.arange(1, domain_size + 1, dtype=np.float64)
    weights = 1.0 / ranks**s
    weights /= weights.sum()
    permuted = rng.permutation(domain_size) + 1
    draws = rng.choice(domain_size, size=n, p=weights)
    return permuted[draws].astype(np.int64)


def clipped_normal_column(
    rng: np.random.Generator, n: int, mean: float, std: float, lo: int, hi: int
) -> np.ndarray:
    """Rounded normal draws clipped into ``[lo, hi]``."""
    values = np.rint(rng.normal(mean, std, size=n)).astype(np.int64)
    return np.clip(values, lo, hi)


def zero_inflated_column(
    rng: np.random.Generator,
    n: int,
    zero_probability: float,
    mean: float,
    std: float,
    lo: int,
    hi: int,
) -> np.ndarray:
    """Mostly-zero column with a clipped-normal body for the non-zeros.

    Models columns like Adult's CAP-GAIN / CAP-LOSS, which are zero for
    the vast majority of tuples -- the tie-heavy shape that triggers
    rank-shrink's 3-way splits.
    """
    values = clipped_normal_column(rng, n, mean, std, lo, hi)
    zero_mask = rng.random(n) < zero_probability
    values[zero_mask] = 0
    return values


def lognormal_column(
    rng: np.random.Generator,
    n: int,
    mean: float,
    sigma: float,
    lo: int,
    hi: int,
) -> np.ndarray:
    """Rounded log-normal draws clipped into ``[lo, hi]``.

    Produces a mostly-distinct heavy-tailed column like Adult's FNALWGT.
    """
    values = np.rint(rng.lognormal(mean, sigma, size=n)).astype(np.int64)
    return np.clip(values, lo, hi)


def ensure_full_domain(
    rng: np.random.Generator, column: np.ndarray, domain_size: int
) -> np.ndarray:
    """Patch a categorical column so every domain value occurs at least once.

    The paper states that in its datasets "the number of distinct values
    on each attribute equals the attribute's domain size".  Skewed
    sampling can miss rare values; this overwrites randomly chosen rows
    with each missing value (at most ``domain_size`` rows are touched).
    """
    if len(column) < domain_size:
        raise SchemaError(
            f"cannot place {domain_size} distinct values in "
            f"{len(column)} rows"
        )
    present = set(np.unique(column).tolist())
    missing = [v for v in range(1, domain_size + 1) if v not in present]
    if not missing:
        return column
    # Overwrite only rows whose current value occurs more than once, so a
    # patch never knocks out the last occurrence of another value.
    column = column.copy()
    counts = np.bincount(column, minlength=domain_size + 1)
    candidates = iter(rng.permutation(len(column)))
    for value in missing:
        for row in candidates:
            old = column[row]
            if counts[old] >= 2:
                counts[old] -= 1
                column[row] = value
                counts[value] += 1
                break
        else:  # pragma: no cover - impossible when len(column) >= domain_size
            raise SchemaError("ran out of patchable rows")
    return column


def random_dataset(
    space: DataSpace,
    n: int,
    *,
    seed: int = 0,
    numeric_range: tuple[int, int] = (0, 20),
    duplicate_factor: float = 0.0,
    name: str = "",
) -> Dataset:
    """A small random dataset for tests and examples.

    Categorical columns are uniform over their domains; numeric columns
    are uniform over ``numeric_range``.  With ``duplicate_factor > 0``,
    roughly that fraction of rows are copies of earlier rows, exercising
    the bag semantics.
    """
    rng = np.random.default_rng(seed)
    columns = []
    for attr in space:
        if attr.is_categorical:
            assert attr.domain_size is not None
            columns.append(rng.integers(1, attr.domain_size + 1, size=n))
        else:
            lo, hi = numeric_range
            columns.append(rng.integers(lo, hi + 1, size=n))
    matrix = (
        np.column_stack(columns).astype(np.int64)
        if columns
        else np.empty((n, 0))
    )
    if duplicate_factor > 0.0 and n > 1:
        dup_mask = rng.random(n) < duplicate_factor
        sources = rng.integers(0, n, size=int(dup_mask.sum()))
        matrix[np.flatnonzero(dup_mask)] = matrix[sources]
    return Dataset(space, matrix, name=name, validate=False)
