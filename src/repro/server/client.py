"""Client-side query layer: memoisation and cost accounting.

Because the server answers a repeated query identically (Section 1.1),
any sensible crawler caches responses locally -- re-consulting a cached
answer costs nothing.  :class:`CachingClient` makes this explicit:

* :meth:`CachingClient.run` sends a query to the server only on a cache
  miss; the *cost* of a crawl is the number of misses.
* :meth:`CachingClient.peek` consults the cache without ever issuing a
  query -- this is exactly the "lookup table" of slice-cover (Section
  3.2): preprocessing runs every slice query once, and extended-DFS later
  answers tree queries locally from those responses.

The client also powers resumable crawls: crawler algorithms are
deterministic, so re-running one over a warmed cache replays the prefix
of its query sequence for free and continues where the budget cut it
off (see ``examples/budgeted_crawl.py``).

The client is safe to share between threads: :meth:`CachingClient.run`
holds an internal lock across the miss path, so a query is issued to
the server *exactly once* no matter how many threads race on it --
concurrent duplicates are answered from the cache at zero cost, and
the cost accounting stays exact.  (Queries through one client are
therefore serialised; concurrent crawl *sessions* each use their own
client, as in :mod:`repro.crawl.executors`.)

Two executor-facing paths complete the picture:

* **picklable** -- a client (cache, history, stats and all) can be
  pickled and shipped to a process-pool worker; the lock is rebuilt on
  load and listeners, which may close over arbitrary state, are
  dropped (:class:`~repro.crawl.executors.ProcessExecutor` documents
  the copy semantics);
* **awaitable** -- :class:`AwaitableClient` exposes any synchronous
  source (server, client, :class:`~repro.web.adapter.WebSession`)
  through an ``arun`` coroutine, which is the protocol the
  :class:`~repro.crawl.executors.AsyncExecutor` multiplexes on its
  event loop.
"""

from __future__ import annotations

import asyncio
import threading
from collections.abc import Callable, Iterator
from contextlib import contextmanager

from repro.exceptions import QueryBudgetExhausted
from repro.query.query import Query
from repro.server import profiling
from repro.server.limits import SimulatedClock
from repro.server.pickling import LocklessPickle
from repro.server.response import QueryResponse
from repro.server.server import TopKServer
from repro.server.stats import QueryStats, StatsDelta

__all__ = ["CachingClient", "PatientClient", "AwaitableClient"]


class CachingClient(LocklessPickle):
    """Memoising front-end to a :class:`TopKServer`.

    Parameters
    ----------
    server:
        The hidden-database server to crawl.
    """

    def __init__(self, server: TopKServer):
        self._server = server
        self._cache: dict[Query, QueryResponse] = {}
        self._history: list[Query] = []
        self._listeners: list[Callable[[Query, QueryResponse], None]] = []
        self._stats = QueryStats()
        # Unlocked stats buffer of the active batch epoch, or None (the
        # common case); see batch().
        self._delta: StatsDelta | None = None
        # Held across the miss path so a query reaches the server at
        # most once even when threads race on the same cold query.
        self._lock = threading.RLock()

    def _pickle_lock(self):
        # The miss path is re-entrant for listeners that issue queries.
        return threading.RLock()

    def _pickle_trim(self, state: dict) -> dict:
        # Listeners are arbitrary closures; they do not survive the
        # trip (the cache and accounting do).  A mid-epoch pickle (not
        # a supported pattern) must not carry the buffer either.
        state["_listeners"] = []
        state["_delta"] = None
        return state

    # ------------------------------------------------------------------
    # Interface facts a crawler may rely on
    # ------------------------------------------------------------------
    @property
    def space(self):
        """The data space of the underlying server."""
        return self._server.space

    @property
    def k(self) -> int:
        """The server's retrieval limit."""
        return self._server.k

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def run(self, query: Query) -> QueryResponse:
        """Answer ``query``, issuing it to the server only once ever."""
        cached = self._cache.get(query)
        if cached is not None:
            prof = profiling.active()
            if prof is not None:
                prof.count("client.cache_hit")
            return cached
        with self._lock:
            cached = self._cache.get(query)
            if cached is not None:
                prof = profiling.active()
                if prof is not None:
                    prof.count("client.cache_hit")
                return cached
            prof = profiling.active()
            if prof is None:
                response = self._server.run(query)
            else:
                prof.count("client.cache_miss")
                start = profiling.clock()
                response = self._server.run(query)
                prof.record("client.server_wait", profiling.clock() - start)
            self._cache[query] = response
            self._history.append(query)
            delta = self._delta
            if delta is not None:
                # Inside a batch epoch: buffer unlocked, merge at the
                # epoch boundary (batch() holds the client lock, so
                # only this thread can reach the miss path).
                delta.record_counts(
                    response.overflow, len(response.rows), self._stats._phase
                )
            else:
                self._stats.record(response)
            for listener in self._listeners:
                listener(query, response)
        return response

    @contextmanager
    def batch(self) -> Iterator[None]:
        """One batch epoch: shared engine context, batched accounting.

        Inside the ``with`` block this thread holds the client lock
        once for the whole battery, the underlying server (when it is
        one) shares engine work across the misses through
        :meth:`~repro.server.server.TopKServer.batch_context`, and
        stats recording is buffered into a
        :class:`~repro.server.stats.StatsDelta` merged atomically when
        the epoch closes.  Sources without a batch seam (web sessions,
        adversaries, subspace views over them) get the identical epoch
        semantics minus the engine sharing, so accounting, profiling
        phases and exception points never depend on the source kind.
        Re-entrant: a nested epoch joins the outer one.
        """
        with self._lock:
            if self._delta is not None:
                yield  # nested epoch: keep the outer buffer
                return
            delta = StatsDelta()
            self._delta = delta
            batch_context = getattr(self._server, "batch_context", None)
            try:
                if batch_context is None:
                    yield
                else:
                    with batch_context():
                        yield
            finally:
                self._delta = None
                delta.flush_into(self._stats)

    def run_batch(self, queries: list[Query]) -> list[QueryResponse]:
        """Answer a vector of sibling queries, sharing engine work.

        Exactly equivalent to ``[self.run(q) for q in queries]`` --
        every cache probe, history append, stats recording and listener
        call happens per query, in order, so cost accounting and budget
        exhaustion behave identically -- but the batch runs under one
        :meth:`batch` epoch: the misses of the batch evaluate through
        one shared server context, and accounting merges once at the
        epoch boundary.  Sources without a server batch seam take the
        identical path minus the engine sharing, so ``--profile``
        tables match between batched and looped runs on every source.

        Examples
        --------
        >>> from repro import CachingClient, DataSpace, TopKServer
        >>> from repro.datasets import random_dataset
        >>> from repro.query import slice_query
        >>> space = DataSpace.mixed([("color", 3)], [])
        >>> client = CachingClient(
        ...     TopKServer(random_dataset(space, 30, seed=1), k=50)
        ... )
        >>> queries = [slice_query(space, 0, value) for value in (1, 2, 3)]
        >>> responses = client.run_batch(queries)
        >>> client.cost, client.run_batch(queries) == responses
        (3, True)
        """
        with self.batch():
            return [self.run(query) for query in queries]

    def peek(self, query: Query) -> QueryResponse | None:
        """The cached response for ``query``, or ``None`` -- never a query."""
        return self._cache.get(query)

    def _store_local(self, query: Query, response: QueryResponse) -> None:
        """Insert a locally-derived response (zero cost) into the cache.

        Used by subclasses that can answer some queries without the
        server -- e.g. the Section 1.3 attribute-dependency heuristic,
        which knows certain queries cover no valid point.
        """
        self._cache[query] = response

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def cost(self) -> int:
        """Number of distinct queries issued so far (the Problem 1 cost).

        Exact inside a batch epoch too: the epoch's unlocked buffer is
        added to the merged counters, so per-query cost deltas (the
        crawler's progress accounting) read identically with batching
        on or off.
        """
        # Read the merged counter first: the epoch clears the buffer
        # reference before merging, so this order can transiently lag
        # for a concurrent reader but never over-count.
        queries = self._stats.queries
        delta = self._delta
        return queries + (delta.queries if delta is not None else 0)

    @property
    def history(self) -> tuple[Query, ...]:
        """The issued queries, in order (cache hits excluded)."""
        return tuple(self._history)

    @property
    def stats(self) -> QueryStats:
        """Breakdown of issued queries (resolved/overflow, phases)."""
        return self._stats

    def begin_phase(self, name: str) -> None:
        """Attribute subsequent misses to a named cost phase."""
        self._stats.begin_phase(name)

    def end_phase(self) -> None:
        """Close the current cost phase."""
        self._stats.end_phase()

    def add_listener(
        self, listener: Callable[[Query, QueryResponse], None]
    ) -> None:
        """Register a callback invoked after every cache miss."""
        self._listeners.append(listener)

    def __repr__(self) -> str:
        return f"CachingClient(cost={self.cost}, cached={len(self._cache)})"


class PatientClient(CachingClient):
    """A client that sleeps through quota refusals and continues.

    Real hidden-database servers meter queries per identity per day;
    the paper's answer is to minimise the query count, and the
    deployment's answer to the remainder is patience: when a query is
    refused, sleep to the next day and re-issue it.  Because crawlers
    are deterministic and responses are cached, nothing is lost across
    the gap -- the crawl simply continues where the quota cut it off.

    Works over any refusal source that raises
    :class:`QueryBudgetExhausted`: a server-side
    :class:`~repro.server.limits.DailyRateLimit`, or an HTTP 429 from a
    :class:`~repro.web.adapter.WebSession`.

    Parameters
    ----------
    server:
        The query source (server, adversary, web session).
    clock:
        The simulated clock shared with the server's daily limits.
    max_days:
        Refuse to sleep more than this many times (``None`` = no cap);
        exceeding it re-raises the :class:`QueryBudgetExhausted`.
    """

    def __init__(
        self,
        server: TopKServer,
        clock: SimulatedClock,
        *,
        max_days: int | None = None,
    ):
        super().__init__(server)
        self._clock = clock
        self._max_days = max_days
        self._days_slept = 0

    @property
    def days_slept(self) -> int:
        """How many day boundaries the client has waited across."""
        return self._days_slept

    def run(self, query: Query) -> QueryResponse:
        """Answer ``query``, sleeping to the next day on refusals."""
        while True:
            try:
                return super().run(query)
            except QueryBudgetExhausted:
                if (
                    self._max_days is not None
                    and self._days_slept >= self._max_days
                ):
                    raise
                self._clock.sleep_until_next_day()
                self._days_slept += 1


class AwaitableClient:
    """Awaitable facade over any synchronous query source.

    ``await client.arun(query)`` runs the blocking ``source.run`` on a
    worker thread via :func:`asyncio.to_thread`, so coroutine code --
    and in particular the :class:`~repro.crawl.executors.AsyncExecutor`
    -- can drive a :class:`TopKServer`, a :class:`CachingClient` or a
    :class:`~repro.web.adapter.WebSession` without blocking the event
    loop.  The synchronous ``run`` is forwarded too, so the same
    wrapped source works on every executor backend.

    Parameters
    ----------
    source:
        Any query source exposing ``space``, ``k`` and ``run``.
    """

    def __init__(self, source):
        self._source = source

    @property
    def space(self):
        """The underlying data space; the wrapper is transparent."""
        return self._source.space

    @property
    def k(self) -> int:
        """The underlying retrieval limit."""
        return self._source.k

    async def arun(self, query: Query) -> QueryResponse:
        """Answer ``query`` off the event loop, on a worker thread."""
        return await asyncio.to_thread(self._source.run, query)

    def run(self, query: Query) -> QueryResponse:
        """The plain synchronous path, unchanged."""
        return self._source.run(query)

    def __repr__(self) -> str:
        return f"AwaitableClient({self._source!r})"
