"""Pickle support for lock-guarded serving-stack state.

Several serving classes guard mutable state with a ``threading`` lock
-- and locks do not pickle.  :class:`LocklessPickle` implements the one
policy they all share: snapshot the attribute dict under the lock, drop
the lock from the pickled payload, and rebuild a fresh lock on load.
The unpickled copy is fully functional and independently synchronised,
which is exactly what :class:`~repro.crawl.executors.ProcessExecutor`
needs when it ships sources into pool workers.

Independence is also the limitation: a copied limit admits on its own.
When admission must stay exact across the whole pool, the executor's
``shared_limits`` mode swaps these per-copy paths for the shared-state
counterparts in :mod:`repro.crawl.coordinator`
(:class:`~repro.crawl.coordinator.SharedLimitClient` and friends),
which proxy to one authoritative object instead of copying it.

The lock is held only for the shallow attribute-dict copy; nested
containers (a client's response cache, a stats object's phase table)
are serialised after it is released.  Pickle a quiesced object --
before the crawl starts, or between crawls -- as the executors do; a
source being mutated concurrently is not a supported pickling target.

Subclasses customise three knobs: the lock's attribute name
(:attr:`_pickle_lock_attr`), the lock constructor (:meth:`_pickle_lock`,
e.g. for an :class:`threading.RLock`), and a state-trimming hook
(:meth:`_pickle_trim`, e.g. to drop unpicklable listener closures).
"""

from __future__ import annotations

import threading

__all__ = ["LocklessPickle"]


class LocklessPickle:
    """Mixin: pickle everything but the lock; rebuild it on load."""

    #: Name of the instance attribute holding the lock.
    _pickle_lock_attr = "_lock"

    def _pickle_lock(self):
        """Build the replacement lock for an unpickled instance."""
        return threading.Lock()

    def _pickle_trim(self, state: dict) -> dict:
        """Hook: drop or rewrite state entries that must not travel."""
        return state

    def __getstate__(self) -> dict:
        with getattr(self, self._pickle_lock_attr):
            state = self.__dict__.copy()
        del state[self._pickle_lock_attr]
        return self._pickle_trim(state)

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        setattr(self, self._pickle_lock_attr, self._pickle_lock())
