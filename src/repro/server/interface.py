"""The structural protocol every query source satisfies.

Three things in this library answer queries: the in-memory
:class:`~repro.server.server.TopKServer`, the adversarial servers of
:mod:`repro.theory.adversary`, and the HTML-scraping
:class:`~repro.web.adapter.WebSession`.  Crawlers do not care which one
they talk to; :class:`QueryInterface` names the contract they rely on,
so the dependency points at the *interface* of Section 1.1 rather than
at any particular implementation.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.dataspace.space import DataSpace
from repro.query.query import Query
from repro.server.response import QueryResponse

__all__ = ["QueryInterface"]


@runtime_checkable
class QueryInterface(Protocol):
    """Anything that answers hidden-database queries.

    The contract mirrors the paper's Section 1.1 problem setup:

    * :attr:`space` -- the public schema (the search form);
    * :attr:`k` -- the retrieval limit, assumed known to the crawler;
    * :meth:`run` -- answer one query: the full result if at most ``k``
      tuples qualify, otherwise a fixed ``k``-subset plus the overflow
      signal.  Answers to repeated queries must be identical.
    """

    @property
    def space(self) -> DataSpace:
        """The data space being queried."""
        ...

    @property
    def k(self) -> int:
        """The retrieval limit."""
        ...

    def run(self, query: Query) -> QueryResponse:
        """Answer one query per the Section 1.1 contract."""
        ...
