"""Query accounting: the cost metric of Problem 1.

The cost of a crawl is the number of queries sent to the server (paper
Section 1.1: "the cost of an algorithm is the number of queries
issued").  :class:`QueryStats` tracks that number plus a breakdown that
the experiments report (how many queries resolved vs overflowed, tuples
shipped by the server, per-phase subtotals).

Recording is atomic (an internal lock guards every mutation), so a
server or client shared between concurrent crawl sessions keeps exact
totals -- ``queries == resolved + overflowed`` holds at every instant.
The lock is dropped on pickling and rebuilt on load, so stats ride
along when a server is shipped to a process-pool worker (see
:class:`~repro.crawl.executors.ProcessExecutor`).

Inside a batch epoch the per-query locked update is replaced by a
:class:`StatsDelta` -- a plain unlocked counter buffer owned by the
epoch's thread -- folded in with one :meth:`QueryStats.merge_counts`
call when the epoch closes.  Every observation point outside an epoch
(``state()``, write-back, checkpoints) therefore sees exactly the
counters per-query recording would have produced; concurrent readers
*during* an epoch may lag by at most the epoch's in-flight queries,
always by a consistent (queries, resolved, overflowed) triple.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.server.pickling import LocklessPickle
from repro.server.response import QueryResponse

__all__ = ["QueryStats", "StatsDelta"]


class StatsDelta:
    """Unlocked counter buffer for one batch epoch.

    Owned by exactly one thread (the epoch holder), so recording needs
    no lock; the aggregate ships through
    :meth:`QueryStats.merge_counts` once, when the epoch closes.  Phase
    attribution is captured per record (the owning stats' current
    phase), so the merged ``phase_costs`` equal what per-query locked
    recording would have written.
    """

    __slots__ = (
        "queries",
        "resolved",
        "overflowed",
        "tuples_returned",
        "phase_costs",
    )

    def __init__(self) -> None:
        self.queries = 0
        self.resolved = 0
        self.overflowed = 0
        self.tuples_returned = 0
        self.phase_costs: dict[str, int] = {}

    def record_counts(
        self, overflow: bool, tuples: int, phase: str | None
    ) -> None:
        """Buffer one answered query (the epoch twin of ``record``)."""
        self.queries += 1
        if overflow:
            self.overflowed += 1
        else:
            self.resolved += 1
        self.tuples_returned += tuples
        if phase is not None:
            self.phase_costs[phase] = self.phase_costs.get(phase, 0) + 1

    def state(self) -> dict:
        """The buffered counters in :meth:`QueryStats.merge_counts` form."""
        return {
            "queries": self.queries,
            "resolved": self.resolved,
            "overflowed": self.overflowed,
            "tuples_returned": self.tuples_returned,
            "phase_costs": self.phase_costs,
        }

    def flush_into(self, stats: "QueryStats") -> None:
        """Fold the buffer into ``stats`` atomically; no-op when empty."""
        if self.queries:
            stats.merge_counts(self.state())


@dataclass
class QueryStats(LocklessPickle):
    """Mutable counters describing the queries seen so far.

    ``round_trips`` counts *coordinator* round trips, not queries: on a
    local crawl it stays 0, and after a shared-limit process crawl the
    control plane's write-back fills it with the fleet-wide number of
    admission/accounting calls that crossed the process boundary (the
    chatter lease batching exists to shrink; see
    :mod:`repro.crawl.coordinator`).
    """

    queries: int = 0
    resolved: int = 0
    overflowed: int = 0
    tuples_returned: int = 0
    round_trips: int = 0
    phase_costs: dict[str, int] = field(default_factory=dict)
    _phase: str | None = field(default=None, repr=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, response: QueryResponse) -> None:
        """Account for one answered query (atomically)."""
        self.record_counts(response.overflow, len(response.rows))

    def record_counts(self, overflow: bool, tuples: int) -> None:
        """Account for one answered query given its bare counts.

        The wire-level twin of :meth:`record`: the shared-state control
        plane ships ``(overflow, len(rows))`` across the process
        boundary instead of the full response.
        """
        with self._lock:
            self.queries += 1
            if overflow:
                self.overflowed += 1
            else:
                self.resolved += 1
            self.tuples_returned += tuples
            if self._phase is not None:
                self.phase_costs[self._phase] = (
                    self.phase_costs.get(self._phase, 0) + 1
                )

    def begin_phase(self, name: str) -> None:
        """Attribute subsequent queries to a named phase.

        Slice-cover, for instance, separates its ``slice-table``
        preprocessing cost from the ``traversal`` cost (Lemma 4 bounds
        the two terms separately).
        """
        with self._lock:
            self._phase = name
            self.phase_costs.setdefault(name, 0)

    def end_phase(self) -> None:
        """Stop attributing queries to a phase."""
        with self._lock:
            self._phase = None

    @property
    def current_phase(self) -> str | None:
        """The phase queries are currently attributed to, if any."""
        with self._lock:
            return self._phase

    def merge_counts(self, delta: dict) -> None:
        """Fold another stats snapshot's counters into this one.

        The batched twin of :meth:`record_counts`: the shared-state
        control plane's :class:`~repro.crawl.coordinator.SharedStats`
        buffers a worker's recordings locally and ships the aggregate
        as one ``state()``-shaped delta -- one coordinator round trip
        per flush instead of one per query.  Atomic, like every other
        mutation.
        """
        with self._lock:
            self.queries += int(delta["queries"])
            self.resolved += int(delta["resolved"])
            self.overflowed += int(delta["overflowed"])
            self.tuples_returned += int(delta["tuples_returned"])
            for phase, cost in delta["phase_costs"].items():
                self.phase_costs[phase] = (
                    self.phase_costs.get(phase, 0) + int(cost)
                )

    def snapshot(self) -> "QueryStats":
        """An independent, consistent copy of the current counters."""
        with self._lock:
            copy = QueryStats(
                queries=self.queries,
                resolved=self.resolved,
                overflowed=self.overflowed,
                tuples_returned=self.tuples_returned,
                round_trips=self.round_trips,
                phase_costs=dict(self.phase_costs),
            )
        return copy

    def state(self) -> dict:
        """A plain-dict snapshot of the counters (coordinator wire form).

        The shared-state control plane (:mod:`repro.crawl.coordinator`)
        seeds its authoritative copy from this and writes the final
        counts back through :meth:`restore_state` after the crawl.
        """
        with self._lock:
            return {
                "queries": self.queries,
                "resolved": self.resolved,
                "overflowed": self.overflowed,
                "tuples_returned": self.tuples_returned,
                "round_trips": self.round_trips,
                "phase_costs": dict(self.phase_costs),
            }

    def restore_state(self, state: dict) -> None:
        """Overwrite the counters from a :meth:`state` snapshot."""
        with self._lock:
            self.queries = int(state["queries"])
            self.resolved = int(state["resolved"])
            self.overflowed = int(state["overflowed"])
            self.tuples_returned = int(state["tuples_returned"])
            self.round_trips = int(state.get("round_trips", 0))
            self.phase_costs = dict(state["phase_costs"])

    def __str__(self) -> str:
        phases = (
            ", ".join(f"{k}={v}" for k, v in self.phase_costs.items())
            if self.phase_costs
            else "-"
        )
        return (
            f"{self.queries} queries ({self.resolved} resolved, "
            f"{self.overflowed} overflowed; phases: {phases})"
        )
