"""Server-burden analysis: what a crawl costs the *provider*.

The paper closes its introduction with a claim about the other side of
the interface: "for a data provider, permitting an engine to crawl its
database is not expected to impose a heavy toll on its workload."  This
module quantifies that toll from the server's own counters:

* queries answered, split into resolved/overflowing;
* tuples shipped, in total and relative to ``n`` (the *ship factor*:
  how many times over the crawl made the server send its content);
* tuples shipped per query (bounded by ``k``).

An efficient crawler's ship factor stays a small constant: each tuple
is sent once in its final resolved region plus a handful of times in
overflowing ancestors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.server.server import TopKServer

__all__ = ["WorkloadReport", "workload_report"]


@dataclass(frozen=True)
class WorkloadReport:
    """Provider-side summary of a crawl's burden."""

    queries: int
    resolved: int
    overflowed: int
    tuples_shipped: int
    dataset_size: int

    @property
    def ship_factor(self) -> float:
        """Tuples shipped divided by ``n`` -- the redundancy of the crawl.

        1.0 would be the unattainable ideal (every tuple sent exactly
        once); well-behaved crawls land within a small constant.
        """
        if self.dataset_size == 0:
            return 0.0
        return self.tuples_shipped / self.dataset_size

    @property
    def tuples_per_query(self) -> float:
        """Average payload per answered query (at most ``k``)."""
        if self.queries == 0:
            return 0.0
        return self.tuples_shipped / self.queries

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"{self.queries} queries ({self.resolved} resolved, "
            f"{self.overflowed} overflowed), {self.tuples_shipped} tuples "
            f"shipped = {self.ship_factor:.2f}x the database, "
            f"{self.tuples_per_query:.1f} tuples/query"
        )


def workload_report(server: TopKServer) -> WorkloadReport:
    """Snapshot the provider-side burden counters of a server."""
    stats = server.stats
    return WorkloadReport(
        queries=stats.queries,
        resolved=stats.resolved,
        overflowed=stats.overflowed,
        tuples_shipped=stats.tuples_returned,
        dataset_size=server.dataset.n,
    )
