"""Query-evaluation engines backing the simulated hidden-database server.

The server stores its tuples sorted by descending priority; an engine's
single job is, given a query and the limit ``k``, to find the first
``k`` matching tuples in that order and report whether more exist.

Three interchangeable implementations are provided:

* :class:`LinearScanEngine` -- the obviously correct reference: walk the
  rows in priority order, stop at the ``k+1``-st match.  Used in tests
  as ground truth.
* :class:`VectorEngine` -- numpy-vectorised predicate masks, used for the
  paper-scale experiments (tens of thousands of tuples, tens of
  thousands of queries).
* :class:`IndexedEngine` -- per-column sorted indexes answering both
  range and equality predicates by binary search; the candidate set of
  the most selective predicate is verified row-wise.  Fastest when
  queries are selective (deep crawl queries usually are), degrades to a
  full scan otherwise.

Two hot-path mechanisms are shared by all engines (profiled in
``docs/performance.md``):

* **Compiled predicate evaluation** -- row-wise verification goes
  through :func:`repro.query.compile_matcher`: one codegen pass per
  query instead of one predicate-method dispatch per row per attribute.
* **Cached row materialisation** -- the priority-ordered rows are
  converted from the numpy matrix to plain-int tuples once
  (:meth:`QueryEngine._rows`) instead of per response, so returning
  rows is list slicing.  The cache is derived data and is dropped from
  pickles.

Engines also expose a **batched top-k seam**: :meth:`QueryEngine.batch`
returns a :class:`BatchTopK` evaluation context whose per-query answers
are bit-identical to :meth:`QueryEngine.top`, but sibling queries (same
plan prefix, one varying attribute) share per-(attribute, predicate)
masks/candidate sets -- mirroring how lease batching amortised
admission round trips.  :meth:`QueryEngine.top_batch` answers a whole
vector of queries through one such context.

A property-based test (``tests/server/test_engines.py``) checks all
engines agree on arbitrary datasets and queries -- including under
concurrent ``top()`` calls and between batched and per-query
evaluation: engines hold no per-query mutable state, and the lazily
built index structures are guarded by a lock so racing builders
produce one consistent index.

Engines are picklable (the index lock is dropped and rebuilt; indexes
already built travel with the engine), so a whole server can be
shipped to a process-pool worker for CPU-bound crawls
(:class:`~repro.crawl.executors.ProcessExecutor`).
"""

from __future__ import annotations

import abc
import threading
from typing import Sequence

import numpy as np

from repro.query.predicates import (
    EqualityPredicate,
    RangePredicate,
    compile_matcher,
)
from repro.query.query import Query
from repro.server.pickling import LocklessPickle
from repro.server.response import Row

__all__ = [
    "QueryEngine",
    "BatchTopK",
    "LinearScanEngine",
    "VectorEngine",
    "IndexedEngine",
    "make_engine",
]


class QueryEngine(abc.ABC):
    """Evaluates queries against a fixed priority-ordered tuple matrix."""

    def __init__(self, matrix: np.ndarray):
        if matrix.ndim != 2:
            raise ValueError("engine expects an (n, d) matrix")
        self._matrix = matrix
        self._rows_cache: list[Row] | None = None

    @property
    def n(self) -> int:
        """Number of tuples visible to the engine."""
        return int(self._matrix.shape[0])

    @abc.abstractmethod
    def top(self, query: Query, k: int) -> tuple[list[Row], bool]:
        """First ``k`` matches in priority order and an overflow flag."""

    # ------------------------------------------------------------------
    # Batched top-k seam
    # ------------------------------------------------------------------
    def batch(self) -> "BatchTopK":
        """A fresh evaluation context for a vector of sibling queries.

        The context's :meth:`BatchTopK.top` answers exactly like
        :meth:`top`, but engines with shareable per-predicate work
        (masks, candidate sets) reuse it across the queries evaluated
        through one context.  Contexts are cheap, single-use and not
        thread-safe -- make one per batch.
        """
        return BatchTopK(self)

    def top_batch(
        self, queries: Sequence[Query], k: int
    ) -> list[tuple[list[Row], bool]]:
        """Answer a vector of queries in one call, sharing predicate work.

        Equivalent to ``[self.top(q, k) for q in queries]`` -- same
        rows, same order, same overflow flags -- but sibling queries
        evaluated together reuse per-(attribute, predicate) masks and
        candidate sets through one :meth:`batch` context.

        Examples
        --------
        >>> import numpy as np
        >>> from repro import DataSpace
        >>> from repro.query import slice_query
        >>> space = DataSpace.mixed([("color", 3)], [])
        >>> engine = VectorEngine(np.array([[1], [2], [2], [3]]))
        >>> queries = [slice_query(space, 0, value) for value in (1, 2, 3)]
        >>> engine.top_batch(queries, k=2)
        [([(1,)], False), ([(2,), (2,)], False), ([(3,)], False)]
        """
        evaluator = self.batch()
        return [evaluator.top(query, k) for query in queries]

    # ------------------------------------------------------------------
    # Row materialisation (cached, derived data)
    # ------------------------------------------------------------------
    def _rows(self) -> list[Row]:
        """The matrix as plain-int tuples in priority order (cached).

        Built lazily on first use; concurrent builders race benignly
        (both produce the identical list).  The cache never travels in
        pickles -- it is rebuilt on the other side on demand.
        """
        rows = self._rows_cache
        if rows is None:
            rows = [tuple(values) for values in self._matrix.tolist()]
            self._rows_cache = rows
        return rows

    def _row(self, i: int) -> Row:
        return self._rows()[i]

    # ------------------------------------------------------------------
    # Pickling: the row cache is derived data and must not travel.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_rows_cache"] = None
        return state

    def _pickle_trim(self, state: dict) -> dict:
        # Same policy for LocklessPickle subclasses (their __getstate__
        # routes through this hook instead).
        state["_rows_cache"] = None
        return state


class BatchTopK:
    """Evaluation context for answering a vector of sibling queries.

    The base context shares nothing -- it simply forwards to the
    engine's :meth:`~QueryEngine.top`, so answers are trivially
    identical to per-query evaluation.  :class:`VectorEngine` and
    :class:`IndexedEngine` return subclasses that cache
    per-(attribute, predicate) masks / candidate sets across the
    queries of one context.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import DataSpace
    >>> from repro.query import full_query
    >>> space = DataSpace.mixed([("color", 2)], [])
    >>> engine = LinearScanEngine(np.array([[1], [2]]))
    >>> context = engine.batch()
    >>> context.top(full_query(space), k=5)
    ([(1,), (2,)], False)
    """

    def __init__(self, engine: QueryEngine):
        self._engine = engine

    def top(self, query: Query, k: int) -> tuple[list[Row], bool]:
        """Answer one query of the batch (identical to ``engine.top``)."""
        return self._engine.top(query, k)


class LinearScanEngine(QueryEngine):
    """Reference engine: compiled-conjunction scan in pure Python.

    Per query, :func:`repro.query.compile_matcher` emits one closure
    with the predicate constants inlined; the scan then walks the
    cached plain-int row tuples in priority order and stops at the
    ``k+1``-st match.  Semantics are the paper's reference evaluation
    -- only the per-row interpretation cost is gone.
    """

    def top(self, query: Query, k: int) -> tuple[list[Row], bool]:
        rows = self._rows()
        match = compile_matcher(query.predicates)
        if match is None:
            # The all-wildcard query: every tuple matches.
            return rows[:k], len(rows) > k
        out: list[Row] = []
        for row in rows:
            if match(row):
                if len(out) == k:
                    return out, True
                out.append(row)
        return out, False


class _VectorBatch(BatchTopK):
    """Vector-engine context: full-column masks shared across queries."""

    def __init__(self, engine: "VectorEngine"):
        super().__init__(engine)
        self._masks: dict = {}

    def top(self, query: Query, k: int) -> tuple[list[Row], bool]:
        return self._engine._top(query, k, self._masks)  # noqa: SLF001


class VectorEngine(LocklessPickle, QueryEngine):
    """Vectorised engine: numpy boolean masks over the tuple matrix.

    Unconstrained predicates (wildcards, infinite ranges) contribute no
    mask at all, so a typical crawl query that touches only a prefix of
    the attributes costs a handful of vector comparisons.

    Equality predicates additionally use a lazily-built per-(attribute,
    value) row index: the query is evaluated only on the rows matching
    its most selective equality, which makes the deep, rare-prefix
    queries of DFS/slice-cover crawls orders of magnitude cheaper than a
    full-column scan.  Row indices are stored in priority order, so the
    top-``k`` semantics are untouched.

    Batched evaluation (:meth:`~QueryEngine.batch`) caches full-column
    predicate masks by ``(attribute, predicate)``: sibling queries that
    differ in one attribute recompute only that attribute's mask.
    """

    #: Use the value-index path only when the candidate set is this much
    #: smaller than the full matrix (otherwise masks are cheaper).
    _INDEX_SELECTIVITY = 4

    _pickle_lock_attr = "_index_lock"

    def __init__(self, matrix: np.ndarray):
        super().__init__(matrix)
        self._value_index: dict[tuple[int, int], np.ndarray] = {}
        self._index_lock = threading.Lock()

    def _index_for(self, attribute: int, value: int) -> np.ndarray:
        key = (attribute, value)
        rows = self._value_index.get(key)
        if rows is None:
            with self._index_lock:
                rows = self._value_index.get(key)
                if rows is None:
                    rows = np.flatnonzero(self._matrix[:, attribute] == value)
                    self._value_index[key] = rows
        return rows

    def _pickle_trim(self, state: dict) -> dict:
        # Route through QueryEngine's trim explicitly: the MRO puts
        # LocklessPickle's no-op hook first, which silently shipped the
        # row-tuple cache.  The per-(attribute, value) row index is
        # derived data too, rebuilt lazily on first use; neither
        # belongs in a process payload.
        state = QueryEngine._pickle_trim(self, state)
        state["_value_index"] = {}
        return state

    def batch(self) -> BatchTopK:
        return _VectorBatch(self)

    def top(self, query: Query, k: int) -> tuple[list[Row], bool]:
        return self._top(query, k, None)

    def _top(
        self, query: Query, k: int, mask_cache: dict | None
    ) -> tuple[list[Row], bool]:
        # Pick the most selective equality predicate as the candidate set.
        candidates: np.ndarray | None = None
        skip_attribute = -1
        for j, pred in enumerate(query.predicates):
            if isinstance(pred, EqualityPredicate) and pred.value is not None:
                rows = self._index_for(j, pred.value)
                if candidates is None or rows.size < candidates.size:
                    candidates = rows
                    skip_attribute = j
        if candidates is not None and (
            candidates.size * self._INDEX_SELECTIVITY <= self.n
        ):
            return self._top_on_subset(
                query, k, candidates, skip_attribute, mask_cache
            )
        return self._top_full_scan(query, k, mask_cache)

    def _full_mask(
        self, attribute: int, pred, mask_cache: dict | None
    ) -> np.ndarray | None:
        """Full-column mask for ``pred``, cached per batch context."""
        if mask_cache is None:
            return self._predicate_mask(pred, self._matrix[:, attribute])
        key = (attribute, pred)
        if key in mask_cache:
            return mask_cache[key]
        part = self._predicate_mask(pred, self._matrix[:, attribute])
        mask_cache[key] = part
        return part

    def _top_on_subset(
        self,
        query: Query,
        k: int,
        candidates: np.ndarray,
        skip_attribute: int,
        mask_cache: dict | None = None,
    ) -> tuple[list[Row], bool]:
        mask: np.ndarray | None = None
        for j, pred in enumerate(query.predicates):
            if j == skip_attribute:
                continue
            if mask_cache is None:
                part = self._predicate_mask(pred, self._matrix[candidates, j])
            else:
                full = self._full_mask(j, pred, mask_cache)
                part = None if full is None else full[candidates]
            if part is None:
                continue
            mask = part if mask is None else mask & part
        indices = candidates if mask is None else candidates[mask]
        overflow = indices.size > k
        if overflow:
            indices = indices[:k]
        rows = self._rows()
        return [rows[i] for i in indices.tolist()], overflow

    def _top_full_scan(
        self, query: Query, k: int, mask_cache: dict | None = None
    ) -> tuple[list[Row], bool]:
        mask: np.ndarray | None = None
        for j, pred in enumerate(query.predicates):
            part = self._full_mask(j, pred, mask_cache)
            if part is None:
                continue
            mask = part if mask is None else mask & part
        rows = self._rows()
        if mask is None:
            # The all-wildcard query: every tuple matches.
            return rows[:k], self.n > k
        indices = np.flatnonzero(mask)
        overflow = indices.size > k
        if overflow:
            indices = indices[:k]
        return [rows[i] for i in indices.tolist()], overflow

    @staticmethod
    def _predicate_mask(pred, column: np.ndarray) -> np.ndarray | None:
        """Boolean mask of ``column`` values satisfying ``pred``.

        ``None`` signals an unconstrained predicate (no mask needed).
        """
        if isinstance(pred, EqualityPredicate):
            if pred.value is None:
                return None
            return column == pred.value
        assert isinstance(pred, RangePredicate)
        if pred.lo is None and pred.hi is None:
            return None
        if pred.lo is None:
            return column <= pred.hi
        if pred.hi is None:
            return column >= pred.lo
        if pred.lo == pred.hi:
            return column == pred.lo
        return (column >= pred.lo) & (column <= pred.hi)


class _IndexedBatch(BatchTopK):
    """Indexed-engine context: candidate sets shared across queries."""

    def __init__(self, engine: "IndexedEngine"):
        super().__init__(engine)
        self._candidates: dict = {}

    def top(self, query: Query, k: int) -> tuple[list[Row], bool]:
        return self._engine._top(query, k, self._candidates)  # noqa: SLF001


class IndexedEngine(LocklessPickle, QueryEngine):
    """Binary-search engine over lazily built per-column sorted indexes.

    For each attribute the first query constrains, the engine sorts the
    column once and remembers ``(sorted values, row ids)``.  A predicate
    then maps to a contiguous slice of the sorted column via
    :func:`numpy.searchsorted` -- equality is the degenerate range
    ``[c, c]`` -- and the row ids in that slice are the predicate's
    exact candidate set.

    The query is answered from the *smallest* candidate set among its
    constrained attributes: the ids are re-sorted into priority order
    (the matrix is stored priority-descending) and the remaining
    predicates are verified only on those rows, through one compiled
    matcher per query.  Wildcard-heavy but selective crawl queries
    therefore cost ``O(log n + m log m)`` for a candidate count ``m``,
    independent of ``n``.  A query with no constrained attribute falls
    back to "first ``k`` rows".

    Batched evaluation (:meth:`~QueryEngine.batch`) caches candidate
    sets by ``(attribute, predicate)``, so sibling queries re-run the
    binary search only for the attribute they differ in.
    """

    _pickle_lock_attr = "_index_lock"

    def __init__(self, matrix: np.ndarray):
        super().__init__(matrix)
        #: attribute index -> (column values ascending, row ids in that order)
        self._columns: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._index_lock = threading.Lock()

    def _column_index(self, attribute: int) -> tuple[np.ndarray, np.ndarray]:
        index = self._columns.get(attribute)
        if index is None:
            with self._index_lock:
                index = self._columns.get(attribute)
                if index is None:
                    column = self._matrix[:, attribute]
                    order = np.argsort(column, kind="stable")
                    index = (column[order], order)
                    self._columns[attribute] = index
        return index

    def _candidates(self, attribute: int, pred) -> np.ndarray | None:
        """Row ids matching ``pred``, or ``None`` if it is unconstrained."""
        if isinstance(pred, EqualityPredicate):
            if pred.value is None:
                return None
            lo, hi = pred.value, pred.value
        else:
            assert isinstance(pred, RangePredicate)
            if pred.lo is None and pred.hi is None:
                return None
            lo, hi = pred.lo, pred.hi
        values, order = self._column_index(attribute)
        left = 0 if lo is None else int(np.searchsorted(values, lo, "left"))
        right = values.size if hi is None else int(
            np.searchsorted(values, hi, "right")
        )
        return order[left:right]

    def _pickle_trim(self, state: dict) -> dict:
        # Route through QueryEngine's trim explicitly (the MRO puts
        # LocklessPickle's no-op hook first, which silently shipped the
        # row-tuple cache) and drop the sorted column indexes -- both
        # are derived data, rebuilt lazily in the worker.
        state = QueryEngine._pickle_trim(self, state)
        state["_columns"] = {}
        return state

    def batch(self) -> BatchTopK:
        return _IndexedBatch(self)

    def top(self, query: Query, k: int) -> tuple[list[Row], bool]:
        return self._top(query, k, None)

    def _top(
        self, query: Query, k: int, candidate_cache: dict | None
    ) -> tuple[list[Row], bool]:
        best: np.ndarray | None = None
        best_attribute = -1
        for j, pred in enumerate(query.predicates):
            if candidate_cache is None:
                rows = self._candidates(j, pred)
            else:
                key = (j, pred)
                if key in candidate_cache:
                    rows = candidate_cache[key]
                else:
                    rows = self._candidates(j, pred)
                    candidate_cache[key] = rows
            if rows is not None and (best is None or rows.size < best.size):
                best = rows
                best_attribute = j
        all_rows = self._rows()
        if best is None:
            # All-wildcard query: the first k rows in priority order.
            return all_rows[:k], self.n > k
        # ascending row id == descending priority
        ordered = np.sort(best).tolist()
        match = compile_matcher(query.predicates, skip=best_attribute)
        if match is None:
            return [all_rows[i] for i in ordered[:k]], len(ordered) > k
        matches: list[Row] = []
        for i in ordered:
            if match(all_rows[i]):
                if len(matches) == k:
                    return matches, True
                matches.append(all_rows[i])
        return matches, False


def make_engine(name: str, matrix: np.ndarray) -> QueryEngine:
    """Engine factory: ``"linear"``, ``"vector"`` (default) or ``"indexed"``."""
    if name == "linear":
        return LinearScanEngine(matrix)
    if name == "vector":
        return VectorEngine(matrix)
    if name == "indexed":
        return IndexedEngine(matrix)
    raise ValueError(
        f"unknown engine {name!r}; expected 'linear', 'vector' or 'indexed'"
    )
