"""Query-evaluation engines backing the simulated hidden-database server.

The server stores its tuples sorted by descending priority; an engine's
single job is, given a query and the limit ``k``, to find the first
``k`` matching tuples in that order and report whether more exist.

Three interchangeable implementations are provided:

* :class:`LinearScanEngine` -- the obviously correct reference: walk the
  rows in priority order, test each predicate in Python, stop at the
  ``k+1``-st match.  Used in tests as ground truth.
* :class:`VectorEngine` -- numpy-vectorised predicate masks, used for the
  paper-scale experiments (tens of thousands of tuples, tens of
  thousands of queries).
* :class:`IndexedEngine` -- per-column sorted indexes answering both
  range and equality predicates by binary search; the candidate set of
  the most selective predicate is verified row-wise.  Fastest when
  queries are selective (deep crawl queries usually are), degrades to a
  full scan otherwise.

A property-based test (``tests/server/test_engines.py``) checks all
engines agree on arbitrary datasets and queries -- including under
concurrent ``top()`` calls: engines hold no per-query mutable state,
and the lazily built index structures are guarded by a lock so racing
builders produce one consistent index.

Engines are picklable (the index lock is dropped and rebuilt; indexes
already built travel with the engine), so a whole server can be
shipped to a process-pool worker for CPU-bound crawls
(:class:`~repro.crawl.executors.ProcessExecutor`).
"""

from __future__ import annotations

import abc
import threading

import numpy as np

from repro.query.predicates import EqualityPredicate, RangePredicate
from repro.query.query import Query
from repro.server.pickling import LocklessPickle
from repro.server.response import Row

__all__ = [
    "QueryEngine",
    "LinearScanEngine",
    "VectorEngine",
    "IndexedEngine",
    "make_engine",
]


class QueryEngine(abc.ABC):
    """Evaluates queries against a fixed priority-ordered tuple matrix."""

    def __init__(self, matrix: np.ndarray):
        if matrix.ndim != 2:
            raise ValueError("engine expects an (n, d) matrix")
        self._matrix = matrix

    @property
    def n(self) -> int:
        """Number of tuples visible to the engine."""
        return int(self._matrix.shape[0])

    @abc.abstractmethod
    def top(self, query: Query, k: int) -> tuple[list[Row], bool]:
        """First ``k`` matches in priority order and an overflow flag."""

    def _row(self, i: int) -> Row:
        return tuple(int(v) for v in self._matrix[i])


class LinearScanEngine(QueryEngine):
    """Reference engine: per-row predicate evaluation in pure Python."""

    def top(self, query: Query, k: int) -> tuple[list[Row], bool]:
        rows: list[Row] = []
        preds = query.predicates
        for i in range(self.n):
            raw = self._matrix[i]
            if all(pred.matches(int(v)) for pred, v in zip(preds, raw)):
                if len(rows) == k:
                    return rows, True
                rows.append(self._row(i))
        return rows, False


class VectorEngine(LocklessPickle, QueryEngine):
    """Vectorised engine: numpy boolean masks over the tuple matrix.

    Unconstrained predicates (wildcards, infinite ranges) contribute no
    mask at all, so a typical crawl query that touches only a prefix of
    the attributes costs a handful of vector comparisons.

    Equality predicates additionally use a lazily-built per-(attribute,
    value) row index: the query is evaluated only on the rows matching
    its most selective equality, which makes the deep, rare-prefix
    queries of DFS/slice-cover crawls orders of magnitude cheaper than a
    full-column scan.  Row indices are stored in priority order, so the
    top-``k`` semantics are untouched.
    """

    #: Use the value-index path only when the candidate set is this much
    #: smaller than the full matrix (otherwise masks are cheaper).
    _INDEX_SELECTIVITY = 4

    _pickle_lock_attr = "_index_lock"

    def __init__(self, matrix: np.ndarray):
        super().__init__(matrix)
        self._value_index: dict[tuple[int, int], np.ndarray] = {}
        self._index_lock = threading.Lock()

    def _index_for(self, attribute: int, value: int) -> np.ndarray:
        key = (attribute, value)
        rows = self._value_index.get(key)
        if rows is None:
            with self._index_lock:
                rows = self._value_index.get(key)
                if rows is None:
                    rows = np.flatnonzero(self._matrix[:, attribute] == value)
                    self._value_index[key] = rows
        return rows

    def top(self, query: Query, k: int) -> tuple[list[Row], bool]:
        # Pick the most selective equality predicate as the candidate set.
        candidates: np.ndarray | None = None
        skip_attribute = -1
        for j, pred in enumerate(query.predicates):
            if isinstance(pred, EqualityPredicate) and pred.value is not None:
                rows = self._index_for(j, pred.value)
                if candidates is None or rows.size < candidates.size:
                    candidates = rows
                    skip_attribute = j
        if candidates is not None and (
            candidates.size * self._INDEX_SELECTIVITY <= self.n
        ):
            return self._top_on_subset(query, k, candidates, skip_attribute)
        return self._top_full_scan(query, k)

    def _top_on_subset(
        self, query: Query, k: int, candidates: np.ndarray, skip_attribute: int
    ) -> tuple[list[Row], bool]:
        mask: np.ndarray | None = None
        for j, pred in enumerate(query.predicates):
            if j == skip_attribute:
                continue
            part = self._predicate_mask(pred, self._matrix[candidates, j])
            if part is None:
                continue
            mask = part if mask is None else mask & part
        indices = candidates if mask is None else candidates[mask]
        overflow = indices.size > k
        if overflow:
            indices = indices[:k]
        return [self._row(int(i)) for i in indices], overflow

    def _top_full_scan(self, query: Query, k: int) -> tuple[list[Row], bool]:
        mask: np.ndarray | None = None
        for j, pred in enumerate(query.predicates):
            part = self._predicate_mask(pred, self._matrix[:, j])
            if part is None:
                continue
            mask = part if mask is None else mask & part
        if mask is None:
            # The all-wildcard query: every tuple matches.
            overflow = self.n > k
            indices = np.arange(min(self.n, k))
        else:
            indices = np.flatnonzero(mask)
            overflow = indices.size > k
            if overflow:
                indices = indices[:k]
        return [self._row(int(i)) for i in indices], overflow

    @staticmethod
    def _predicate_mask(pred, column: np.ndarray) -> np.ndarray | None:
        """Boolean mask of ``column`` values satisfying ``pred``.

        ``None`` signals an unconstrained predicate (no mask needed).
        """
        if isinstance(pred, EqualityPredicate):
            if pred.value is None:
                return None
            return column == pred.value
        assert isinstance(pred, RangePredicate)
        if pred.lo is None and pred.hi is None:
            return None
        if pred.lo is None:
            return column <= pred.hi
        if pred.hi is None:
            return column >= pred.lo
        if pred.lo == pred.hi:
            return column == pred.lo
        return (column >= pred.lo) & (column <= pred.hi)


class IndexedEngine(LocklessPickle, QueryEngine):
    """Binary-search engine over lazily built per-column sorted indexes.

    For each attribute the first query constrains, the engine sorts the
    column once and remembers ``(sorted values, row ids)``.  A predicate
    then maps to a contiguous slice of the sorted column via
    :func:`numpy.searchsorted` -- equality is the degenerate range
    ``[c, c]`` -- and the row ids in that slice are the predicate's
    exact candidate set.

    The query is answered from the *smallest* candidate set among its
    constrained attributes: the ids are re-sorted into priority order
    (the matrix is stored priority-descending) and the remaining
    predicates are verified only on those rows.  Wildcard-heavy but
    selective crawl queries therefore cost ``O(log n + m log m)`` for a
    candidate count ``m``, independent of ``n``.  A query with no
    constrained attribute falls back to "first ``k`` rows".
    """

    _pickle_lock_attr = "_index_lock"

    def __init__(self, matrix: np.ndarray):
        super().__init__(matrix)
        #: attribute index -> (column values ascending, row ids in that order)
        self._columns: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._index_lock = threading.Lock()

    def _column_index(self, attribute: int) -> tuple[np.ndarray, np.ndarray]:
        index = self._columns.get(attribute)
        if index is None:
            with self._index_lock:
                index = self._columns.get(attribute)
                if index is None:
                    column = self._matrix[:, attribute]
                    order = np.argsort(column, kind="stable")
                    index = (column[order], order)
                    self._columns[attribute] = index
        return index

    def _candidates(self, attribute: int, pred) -> np.ndarray | None:
        """Row ids matching ``pred``, or ``None`` if it is unconstrained."""
        if isinstance(pred, EqualityPredicate):
            if pred.value is None:
                return None
            lo, hi = pred.value, pred.value
        else:
            assert isinstance(pred, RangePredicate)
            if pred.lo is None and pred.hi is None:
                return None
            lo, hi = pred.lo, pred.hi
        values, order = self._column_index(attribute)
        left = 0 if lo is None else int(np.searchsorted(values, lo, "left"))
        right = values.size if hi is None else int(
            np.searchsorted(values, hi, "right")
        )
        return order[left:right]

    def top(self, query: Query, k: int) -> tuple[list[Row], bool]:
        best: np.ndarray | None = None
        best_attribute = -1
        for j, pred in enumerate(query.predicates):
            rows = self._candidates(j, pred)
            if rows is not None and (best is None or rows.size < best.size):
                best = rows
                best_attribute = j
        if best is None:
            # All-wildcard query: the first k rows in priority order.
            overflow = self.n > k
            return [self._row(i) for i in range(min(self.n, k))], overflow
        ordered = np.sort(best)  # ascending row id == descending priority
        matches: list[Row] = []
        preds = query.predicates
        for i in ordered:
            raw = self._matrix[i]
            qualified = True
            for j, pred in enumerate(preds):
                if j == best_attribute:
                    continue
                if not pred.matches(int(raw[j])):
                    qualified = False
                    break
            if qualified:
                if len(matches) == k:
                    return matches, True
                matches.append(self._row(int(i)))
        return matches, False


def make_engine(name: str, matrix: np.ndarray) -> QueryEngine:
    """Engine factory: ``"linear"``, ``"vector"`` (default) or ``"indexed"``."""
    if name == "linear":
        return LinearScanEngine(matrix)
    if name == "vector":
        return VectorEngine(matrix)
    if name == "indexed":
        return IndexedEngine(matrix)
    raise ValueError(
        f"unknown engine {name!r}; expected 'linear', 'vector' or 'indexed'"
    )
