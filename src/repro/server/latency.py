"""Simulated network latency in front of a query source.

The simulated :class:`~repro.server.server.TopKServer` answers in
microseconds, but a real hidden database sits across the network: each
query is a round trip, and round trips -- not CPU -- dominate a crawl's
wall clock.  :class:`LatencySource` models that by sleeping a fixed
interval before forwarding each query, which is what makes the
sequential-vs-parallel comparison in
``benchmarks/bench_parallel_partitioned.py`` honest: worker threads
overlap the waits exactly as they would overlap real round trips.

The wrapper is stateless apart from its configuration, hence trivially
thread-safe, picklable whenever the wrapped source is, and transparent
to crawlers (it forwards ``space`` and ``k`` like
:class:`~repro.crawl.partition.SubspaceView` does).

:class:`AsyncLatencySource` is the awaitable sibling: its ``arun``
coroutine pays the round trip with :func:`asyncio.sleep`, so the
:class:`~repro.crawl.executors.AsyncExecutor` multiplexes many
sessions' waits on one event loop instead of pinning a thread per
in-flight query.  It keeps a synchronous ``run`` fallback, so the same
source object works on every executor backend and yields identical
responses.
"""

from __future__ import annotations

import asyncio
import time
from contextlib import nullcontext

from repro.query.query import Query
from repro.server.response import QueryResponse

__all__ = ["LatencySource", "AsyncLatencySource"]


class LatencySource:
    """Delay every forwarded query by a fixed round-trip time.

    Parameters
    ----------
    source:
        Any query source (server, client, view) exposing ``space``,
        ``k`` and ``run``.
    seconds:
        Simulated round-trip time per query.  Applied *before*
        forwarding, so a refused query (quota exception) still pays the
        trip, exactly like a real request that gets a 429 back.
    """

    def __init__(self, source, seconds: float):
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        self._source = source
        self._seconds = seconds

    @property
    def space(self):
        """The underlying data space; the wrapper is transparent."""
        return self._source.space

    @property
    def k(self) -> int:
        """The underlying retrieval limit."""
        return self._source.k

    @property
    def seconds(self) -> float:
        """The simulated round-trip time."""
        return self._seconds

    def run(self, query: Query) -> QueryResponse:
        """Sleep one round trip, then forward ``query``."""
        if self._seconds:
            time.sleep(self._seconds)
        return self._source.run(query)

    def batch_context(self):
        """Delegate the batch seam; latency applies per query regardless."""
        inner = getattr(self._source, "batch_context", None)
        if inner is None:
            return nullcontext()
        return inner()

    def __repr__(self) -> str:
        return f"LatencySource({self._source!r}, seconds={self._seconds})"


class AsyncLatencySource(LatencySource):
    """A latency simulator whose round trips are awaitable.

    ``arun`` charges the round trip with :func:`asyncio.sleep` (the
    event loop keeps serving other sessions during the wait) and then
    forwards to the wrapped synchronous source -- the forwarded call is
    the in-memory simulation, microseconds next to the simulated trip.
    The inherited blocking ``run`` stays available, so sequential,
    thread and process executors accept the same source unchanged and
    produce identical responses.
    """

    async def arun(self, query: Query) -> QueryResponse:
        """Await one round trip, then forward ``query``."""
        if self._seconds:
            await asyncio.sleep(self._seconds)
        return self._source.run(query)

    def __repr__(self) -> str:
        return (
            f"AsyncLatencySource({self._source!r}, seconds={self._seconds})"
        )
