"""Server responses: the visible half of the top-k interface.

Per Section 1.1 of the paper, the server's answer to a query ``q`` is

* the entire result ``q(D)`` when ``|q(D)| <= k`` (the query *resolves*);
* otherwise exactly ``k`` tuples of ``q(D)`` plus an *overflow* signal.

A response never reveals ``|q(D)|`` beyond that one bit.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["QueryResponse", "Row"]

#: A tuple of the hidden database, as plain Python integers.
Row = tuple[int, ...]


@dataclass(frozen=True, slots=True)
class QueryResponse:
    """What the crawler sees after issuing one query.

    Attributes
    ----------
    rows:
        The returned tuples, in the server's fixed priority order.  When
        the query overflowed this has exactly ``k`` entries.
    overflow:
        ``True`` iff more qualifying tuples exist than were returned.
    """

    rows: tuple[Row, ...]
    overflow: bool

    @property
    def resolved(self) -> bool:
        """``True`` iff the response is the complete result of the query."""
        return not self.overflow

    def __len__(self) -> int:
        return len(self.rows)

    def __str__(self) -> str:
        flag = "overflow" if self.overflow else "resolved"
        return f"QueryResponse({len(self.rows)} rows, {flag})"
