"""Query limits: budgets and per-day quotas.

The paper motivates the cost metric with the observation that "most
systems have a control on how many queries can be submitted by the same
IP address within a period of time (e.g., a day)".  This module models
those controls so the examples can demonstrate budgeted, resumable
crawls:

* :class:`QueryBudget` -- a hard cap on total queries.
* :class:`DailyRateLimit` -- at most ``per_day`` queries per simulated
  day; combined with :class:`SimulatedClock`, a crawl can sleep to the
  next day and resume (the deterministic algorithms plus the response
  cache make resumption free).

All limits (and the clock) are thread-safe: admission is atomic, so
concurrent crawl sessions sharing one limit can never over-admit --
exactly ``per_day`` (or ``max_queries``) admissions succeed no matter
how many threads race on :meth:`QueryLimit.admit`.

Limits and the clock are also picklable (the lock is dropped and
rebuilt), so a limited server can be shipped to a process-pool worker.
Note the semantics of a plain pickled copy: each worker process admits
against its own *copy* of the limit -- cross-process admission is not
shared.  When admission must be globally exact across a process pool,
:mod:`repro.crawl.coordinator` moves the authoritative limit into a
coordinator process and hands the workers
:class:`~repro.crawl.coordinator.SharedLimitClient` proxies instead
(the process executor's ``shared_limits=True`` mode does exactly
that).

Every limit (and the clock) exposes ``state()`` / ``restore_state()``
-- a plain-dict snapshot of its counters -- which is how the
coordinator seeds its authoritative copy from a local object and
writes the final counts back after a crawl.

Leasing
-------
``admit()`` charges one query per call -- the right granularity in
process, and one *coordinator round trip* per query when the limit is
authoritative in a control-plane process.  :meth:`QueryLimit.lease`
amortises that: it admits up to ``n`` queries in one atomic call and
returns a :class:`LimitLease` the caller consumes locally
(:meth:`LimitLease.take`), returning whatever went unused via
:meth:`QueryLimit.release` when its unit of work completes.  Accounting
stays exact: a crawl that completes within its limits charges exactly
the queries it issued (leased-but-unused units come back), and a limit
that *refuses* a lease is terminally exhausted -- it reads fully
charged and later releases are void, exactly the state per-query
admission would have left it in.  :class:`QueryBudget` implements real
chunked leasing; limits without a natural chunk semantics (e.g. a
:class:`DailyRateLimit`, whose quota resets under the lessee's feet at
day boundaries) inherit the safe per-query default.
"""

from __future__ import annotations

import abc
import threading

from repro.exceptions import QueryBudgetExhausted
from repro.server.pickling import LocklessPickle

__all__ = [
    "QueryLimit",
    "LimitLease",
    "QueryBudget",
    "DailyRateLimit",
    "SimulatedClock",
]


class LimitLease:
    """A chunk of pre-admitted queries held locally by one client.

    Produced by :meth:`QueryLimit.lease`: ``granted`` queries are
    already charged against the limit, so the holder may issue that
    many without consulting it again -- :meth:`take` consumes one unit
    locally.  Whatever stays :attr:`unused` must go back through
    :meth:`QueryLimit.release` when the holder's unit of work ends, so
    the limit's counters read exactly the queries actually issued.

    Examples
    --------
    >>> budget = QueryBudget(10)
    >>> lease = budget.lease(4)
    >>> lease.take(), lease.take()
    (True, True)
    >>> budget.release(lease)   # 2 unused units flow back
    >>> budget.used
    2
    """

    __slots__ = ("granted", "consumed")

    def __init__(self, granted: int):
        self.granted = int(granted)
        self.consumed = 0

    @property
    def unused(self) -> int:
        """Units still held: granted but not consumed."""
        return self.granted - self.consumed

    def take(self) -> bool:
        """Consume one unit locally; ``False`` when the lease is dry."""
        if self.consumed >= self.granted:
            return False
        self.consumed += 1
        return True

    def __repr__(self) -> str:
        return f"LimitLease(granted={self.granted}, used={self.consumed})"


class QueryLimit(abc.ABC):
    """Admission control consulted by the server before each query."""

    @abc.abstractmethod
    def admit(self) -> None:
        """Account for one query, raising :class:`QueryBudgetExhausted`
        if it may not be issued."""

    def lease(self, n: int) -> LimitLease:
        """Admit up to ``n`` queries in one call; raise when none fit.

        The default implementation admits exactly one query per call
        (a degenerate lease), which keeps any :class:`QueryLimit`
        subclass correct under a leasing client at per-query
        granularity; limits with a safe chunk semantics override this
        (see :meth:`QueryBudget.lease`).
        """
        if n < 1:
            raise ValueError(f"lease size must be positive, got {n}")
        self.admit()
        return LimitLease(1)

    def release(self, lease: LimitLease) -> None:
        """Return a lease's unused units.  Default: nothing to return
        (the degenerate one-query lease is consumed by definition).
        Always idempotent: a released lease reads fully consumed, so a
        second release (an explicit call plus a finally-block flush)
        returns nothing twice."""
        lease.consumed = lease.granted


class QueryBudget(LocklessPickle, QueryLimit):
    """A hard cap on the total number of queries.

    >>> budget = QueryBudget(2)
    >>> budget.admit(); budget.admit()
    >>> budget.remaining
    0
    """

    def __init__(self, max_queries: int):
        if max_queries < 0:
            raise ValueError("max_queries must be non-negative")
        self._max = max_queries
        self._used = 0
        # Once an admission or lease has been *refused*, the budget is
        # terminally exhausted: releases of leased-but-unused units are
        # void, so it keeps reading fully charged -- exactly the state
        # per-query admission leaves behind.  refill() re-opens it.
        self._refused = False
        self._lock = threading.Lock()

    @property
    def remaining(self) -> int:
        """How many more queries the budget admits."""
        with self._lock:
            return self._max - self._used

    @property
    def used(self) -> int:
        """How many queries the budget has admitted."""
        with self._lock:
            return self._used

    def admit(self) -> None:
        with self._lock:
            if self._used >= self._max:
                self._refused = True
                raise QueryBudgetExhausted(
                    f"query budget of {self._max} exhausted", issued=self._used
                )
            self._used += 1

    def lease(self, n: int) -> LimitLease:
        """Atomically admit up to ``n`` queries as one chunk.

        Grants ``min(n, remaining)`` units (charged immediately) and
        raises :class:`~repro.exceptions.QueryBudgetExhausted` -- with
        the budget fully charged -- when nothing remains.  The one call
        replaces up to ``n`` :meth:`admit` round trips when the budget
        is authoritative in a coordinator process (see
        :class:`~repro.crawl.coordinator.SharedLimitClient`).
        """
        if n < 1:
            raise ValueError(f"lease size must be positive, got {n}")
        with self._lock:
            granted = min(n, self._max - self._used)
            if granted <= 0:
                self._refused = True
                raise QueryBudgetExhausted(
                    f"query budget of {self._max} exhausted", issued=self._used
                )
            self._used += granted
            return LimitLease(granted)

    def release(self, lease: LimitLease) -> None:
        """Return a lease's unused units to the budget.

        Idempotent (the lease reads fully consumed afterwards, so a
        double release returns nothing twice) and void once the budget
        has refused an admission (it is then terminally exhausted and
        keeps reading fully charged; see ``__init__``).
        """
        unused = lease.unused
        lease.consumed = lease.granted
        if unused <= 0:
            return
        with self._lock:
            if self._refused:
                return
            self._used = max(0, self._used - unused)

    def refill(self, extra: int) -> None:
        """Grow the budget (e.g. the operator raised the quota)."""
        if extra < 0:
            raise ValueError("extra must be non-negative")
        with self._lock:
            self._max += extra
            self._refused = False

    def state(self) -> dict:
        """A plain-dict snapshot of the budget's counters.

        Carries the terminal ``refused`` flag, so a snapshot of an
        exhausted budget restores with its void-release semantics
        intact -- and restoring a healthy snapshot clears it.
        """
        with self._lock:
            return {
                "max_queries": self._max,
                "used": self._used,
                "refused": self._refused,
            }

    def restore_state(self, state: dict) -> None:
        """Overwrite the counters from a :meth:`state` snapshot."""
        with self._lock:
            self._max = int(state["max_queries"])
            self._used = int(state["used"])
            self._refused = bool(state.get("refused", False))


class SimulatedClock(LocklessPickle):
    """A trivially simple discrete clock counting whole days."""

    def __init__(self, day: int = 0):
        self._day = day
        self._lock = threading.Lock()

    @property
    def day(self) -> int:
        """The current simulated day index."""
        return self._day

    def sleep_until_next_day(self) -> int:
        """Advance to the next day and return its index (atomically)."""
        with self._lock:
            self._day += 1
            return self._day

    def state(self) -> dict:
        """A plain-dict snapshot of the clock."""
        with self._lock:
            return {"day": self._day}

    def restore_state(self, state: dict) -> None:
        """Overwrite the clock from a :meth:`state` snapshot."""
        with self._lock:
            self._day = int(state["day"])


class DailyRateLimit(LocklessPickle, QueryLimit):
    """At most ``per_day`` queries per simulated day.

    The limit resets whenever the attached clock reports a new day,
    modelling the per-IP daily quotas of real hidden-database servers.
    """

    def __init__(self, per_day: int, clock: SimulatedClock):
        if per_day < 1:
            raise ValueError("per_day must be positive")
        self._per_day = per_day
        self._clock = clock
        self._counted_day = clock.day
        self._used_today = 0
        self._lock = threading.Lock()

    @property
    def clock(self) -> SimulatedClock:
        """The clock whose day boundaries reset the quota."""
        return self._clock

    @property
    def used_today(self) -> int:
        """Queries spent against today's quota."""
        with self._lock:
            self._roll_over()
            return self._used_today

    @property
    def remaining_today(self) -> int:
        """Queries left in today's quota."""
        with self._lock:
            self._roll_over()
            return self._per_day - self._used_today

    def _roll_over(self) -> None:
        # Caller holds self._lock.
        if self._clock.day != self._counted_day:
            self._counted_day = self._clock.day
            self._used_today = 0

    def admit(self) -> None:
        with self._lock:
            self._roll_over()
            if self._used_today >= self._per_day:
                raise QueryBudgetExhausted(
                    f"daily quota of {self._per_day} queries exhausted on day "
                    f"{self._clock.day}",
                    issued=self._used_today,
                )
            self._used_today += 1

    def state(self) -> dict:
        """A plain-dict snapshot of today's quota counters."""
        with self._lock:
            return {
                "per_day": self._per_day,
                "counted_day": self._counted_day,
                "used_today": self._used_today,
            }

    def restore_state(self, state: dict) -> None:
        """Overwrite the counters from a :meth:`state` snapshot."""
        with self._lock:
            self._per_day = int(state["per_day"])
            self._counted_day = int(state["counted_day"])
            self._used_today = int(state["used_today"])
