"""The hidden-database server substrate: top-k interface, cost accounting.

This package implements the "local server" of the paper's experiments:
a deterministic top-``k`` query interface over an in-memory dataset,
plus the client-side machinery (response cache, budgets, rate limits)
that a real crawler deployment would carry.
"""

from repro.server.client import AwaitableClient, CachingClient, PatientClient
from repro.server.engines import (
    IndexedEngine,
    LinearScanEngine,
    QueryEngine,
    VectorEngine,
)
from repro.server.interface import QueryInterface
from repro.server.latency import AsyncLatencySource, LatencySource
from repro.server.limits import (
    DailyRateLimit,
    LimitLease,
    QueryBudget,
    QueryLimit,
    SimulatedClock,
)
from repro.server.response import QueryResponse, Row
from repro.server.server import TopKServer
from repro.server.stats import QueryStats
from repro.server.workload import WorkloadReport, workload_report

__all__ = [
    "AwaitableClient",
    "CachingClient",
    "PatientClient",
    "IndexedEngine",
    "LinearScanEngine",
    "QueryEngine",
    "QueryInterface",
    "AsyncLatencySource",
    "LatencySource",
    "VectorEngine",
    "DailyRateLimit",
    "LimitLease",
    "QueryBudget",
    "QueryLimit",
    "SimulatedClock",
    "QueryResponse",
    "Row",
    "TopKServer",
    "QueryStats",
    "WorkloadReport",
    "workload_report",
]
