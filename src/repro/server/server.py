"""The simulated hidden-database server (paper Section 1.1 and 6).

The authors evaluated their algorithms against a local re-implementation
of the web interface: "we implemented a local server to run our
algorithms.  Our implementation conforms strictly to the problem setup
in Section 1.1 ... each tuple is assigned a random priority, so that if
a query overflows, always the k tuples with the highest priorities are
returned."  :class:`TopKServer` is that server.

Determinism is the crucial property: issuing the same query twice yields
the same response ("repeating the same query may not retrieve new
tuples"), which is why naive re-querying cannot crawl a hidden database
and why client-side memoisation is free.

The server is safe for concurrent callers (one server shared by several
crawl sessions, as :mod:`repro.crawl.parallel` allows): the tuple matrix
is immutable, the engines' lazy indexes are built under a lock, limit
admission is atomic, and :class:`~repro.server.stats.QueryStats`
recording is atomic -- so concurrent ``run()`` calls return exactly what
sequential calls would, and the workload counters stay exact.
"""

from __future__ import annotations

import copy
import threading
from collections.abc import Iterable, Sequence
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError
from repro.query.query import Query
from repro.server import profiling
from repro.server.engines import make_engine
from repro.server.limits import QueryLimit
from repro.server.response import QueryResponse
from repro.server.stats import QueryStats, StatsDelta

__all__ = ["TopKServer"]


class TopKServer:
    """A hidden database behind a top-``k`` query interface.

    Parameters
    ----------
    dataset:
        The hidden content.  Crawler code must never touch it; it is
        exposed (as :attr:`dataset`) for verification harnesses only.
    k:
        The retrieval limit: the maximum number of tuples returned per
        query (e.g. 1000 for Yahoo! Autos at the time of the paper).
    priority_seed:
        Seed for the random tuple priorities used to pick which ``k``
        tuples an overflowing query returns.
    priorities:
        Explicit priorities (higher wins), overriding the seeded ones.
        The worked-example tests use this to reproduce the exact server
        responses of the paper's Figures 3-6.
    engine:
        ``"vector"`` (numpy masks, default), ``"linear"`` (reference
        scan) or ``"indexed"`` (per-column binary-search indexes).
    limits:
        Admission controls (budgets, daily quotas) consulted before each
        query is answered.
    """

    def __init__(
        self,
        dataset: Dataset,
        k: int,
        *,
        priority_seed: int = 0,
        priorities: Sequence[float] | None = None,
        engine: str = "vector",
        limits: Iterable[QueryLimit] = (),
    ):
        if k < 1:
            raise SchemaError(f"k must be at least 1, got {k}")
        self._dataset = dataset
        self._k = k
        if priorities is None:
            rng = np.random.default_rng(priority_seed)
            priority_array = rng.permutation(dataset.n).astype(np.float64)
        else:
            priority_array = np.asarray(priorities, dtype=np.float64)
            if priority_array.shape != (dataset.n,):
                raise SchemaError(
                    f"expected {dataset.n} priorities, got "
                    f"{priority_array.shape}"
                )
        # Stable sort by descending priority; ties broken by row index.
        order = np.argsort(-priority_array, kind="stable")
        self._engine = make_engine(engine, dataset.rows[order])
        self._limits = tuple(limits)
        self._stats = QueryStats()
        # Per-thread batched-evaluation context (see batch_context()).
        self._batch = threading.local()

    # ------------------------------------------------------------------
    # The public interface a crawler may rely on
    # ------------------------------------------------------------------
    @property
    def space(self) -> DataSpace:
        """The data space; its schema is public (the search form)."""
        return self._dataset.space

    @property
    def k(self) -> int:
        """The retrieval limit, assumed known to the crawler."""
        return self._k

    def run(self, query: Query) -> QueryResponse:
        """Answer one query, per the Section 1.1 contract.

        Raises
        ------
        QueryBudgetExhausted
            When an attached limit refuses the query.  The query is then
            *not* answered and not counted.
        """
        if query.space != self._dataset.space:
            raise SchemaError("query was built against a different data space")
        # Lean admission: the common unlimited server skips the loop
        # setup entirely -- no admission locks touched per query.
        if self._limits:
            for limit in self._limits:
                limit.admit()
        batch = self._batch
        evaluator = getattr(batch, "evaluator", None) or self._engine
        prof = profiling.active()
        if prof is None:
            rows, overflow = evaluator.top(query, self._k)
        else:
            start = profiling.clock()
            rows, overflow = evaluator.top(query, self._k)
            prof.record("server.engine_top", profiling.clock() - start)
        response = QueryResponse(tuple(rows), overflow)
        delta = getattr(batch, "stats_delta", None)
        if delta is not None:
            # Inside a batch epoch: buffer unlocked, merge at epoch end.
            delta.record_counts(
                overflow, len(response.rows), self._stats._phase
            )
        else:
            self._stats.record(response)
        return response

    @contextmanager
    def batch_context(self) -> Iterator[None]:
        """Share engine work across the :meth:`run` calls of one batch.

        Inside the ``with`` block, this thread's ``run()`` calls
        evaluate through one :class:`~repro.server.engines.BatchTopK`
        context, so sibling queries reuse per-(attribute, predicate)
        masks/candidate sets, and stats recording is buffered into an
        unlocked :class:`~repro.server.stats.StatsDelta` that merges
        atomically when the epoch closes -- one lock acquisition per
        battery instead of one per query.  Everything else about
        ``run`` -- admission order, responses, exceptions -- is
        untouched, and every observation point outside the epoch sees
        exactly the counters per-query recording would have produced,
        which is what keeps batched evaluation byte-identical to
        sequential calls.  The context is thread-local (concurrent
        sessions on other threads are unaffected) and re-entrant (a
        nested epoch joins the outer one).
        """
        batch = self._batch
        if getattr(batch, "evaluator", None) is not None:
            yield  # nested epoch: keep the outer context
            return
        batch.evaluator = self._engine.batch()
        # Only a plain QueryStats supports the deferred merge; shared-
        # state proxies (coordinator mode) keep per-query recording,
        # which is already a cheap local buffer there.
        stats = self._stats
        delta = StatsDelta() if isinstance(stats, QueryStats) else None
        batch.stats_delta = delta
        try:
            yield
        finally:
            batch.evaluator = None
            batch.stats_delta = None
            if delta is not None:
                delta.flush_into(stats)

    def run_batch(self, queries: Sequence[Query]) -> list[QueryResponse]:
        """Answer a vector of sibling queries in one call.

        Exactly equivalent to ``[self.run(q) for q in queries]`` --
        per-query admission, per-query stats recording, identical
        responses, and a limit refusal raises at the same query it
        would have sequentially -- but the engine evaluates the batch
        through one shared context.

        Examples
        --------
        >>> from repro import DataSpace, TopKServer
        >>> from repro.datasets import random_dataset
        >>> from repro.query import slice_query
        >>> space = DataSpace.mixed([("color", 3)], [])
        >>> server = TopKServer(random_dataset(space, 30, seed=1), k=50)
        >>> responses = server.run_batch(
        ...     [slice_query(space, 0, value) for value in (1, 2, 3)]
        ... )
        >>> sum(len(r.rows) for r in responses)
        30
        >>> server.stats.queries
        3
        """
        with self.batch_context():
            return [self.run(query) for query in queries]

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_batch"]  # threading.local does not pickle
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._batch = threading.local()

    def with_accounting(
        self,
        *,
        limits: Iterable[QueryLimit] | None = None,
        stats: QueryStats | None = None,
    ) -> "TopKServer":
        """A shallow clone with the admission/accounting state swapped.

        The clone shares the (immutable) dataset and engine with the
        original but admits against ``limits`` and records into
        ``stats`` instead; ``None`` keeps the original's object.  This
        is the rewiring seam of the shared-state control plane
        (:mod:`repro.crawl.coordinator`): before a server ships to a
        process pool, its limits and stats are replaced by shared
        proxies so every worker charges the one authoritative copy.
        """
        clone = copy.copy(self)
        # A shallow copy would share the thread-local batch state; give
        # the clone its own so an epoch on one never buffers (or
        # flushes) stats through the other.
        clone._batch = threading.local()
        if limits is not None:
            clone._limits = tuple(limits)
        if stats is not None:
            clone._stats = stats
        return clone

    # ------------------------------------------------------------------
    # Operator-side introspection (not available to crawlers)
    # ------------------------------------------------------------------
    @property
    def dataset(self) -> Dataset:
        """The hidden content -- for verification harnesses only."""
        return self._dataset

    @property
    def stats(self) -> QueryStats:
        """Server-side workload counters (the provider's burden)."""
        return self._stats

    def __repr__(self) -> str:
        return (
            f"TopKServer(n={self._dataset.n}, k={self._k}, "
            f"kind={self._dataset.space.kind.value})"
        )
