"""The profiling seam: per-phase counters/timers for the hot path.

This module holds the *implementation* of the profiling seam whose
public face is :mod:`repro.crawl.profiling`.  It lives next to the
serving stack (rather than under ``repro.crawl``) so that
``client.py``/``server.py`` can import it without creating an import
cycle -- the crawl package imports the server package, never the other
way around.

Design constraints, in order:

1. **Zero cost when disabled.**  The seam is a single module-level
   ``Profiler | None``; every instrumentation site does one ``active()``
   check (a global read) and skips all ``perf_counter`` calls when it is
   ``None``.  Profiling never changes *what* runs -- only whether wall
   clocks are read around it -- so results and query counts are
   byte-identical with profiling on or off (pinned by
   ``tests/crawl/test_profiling.py``).
2. **Deterministic shape.**  :meth:`Profiler.report` returns phases in
   sorted key order with a fixed per-phase schema, so tooling (and
   tests) can rely on the structure even though the timings themselves
   vary run to run.
3. **Thread-safe aggregation.**  One profiler aggregates across every
   session thread of a crawl; recording takes an internal lock.  The
   seam does **not** cross process boundaries: pool workers of the
   process backend run in their own interpreters and their phases are
   not collected (the coordinator's round-trip accounting in
   ``QueryStats`` still is).

Examples
--------
>>> from repro.crawl import profiling
>>> with profiling.profile() as prof:
...     t0 = profiling.clock()
...     prof.count("demo.events", 3)
...     prof.record("demo.work", profiling.clock() - t0)
>>> report = prof.report()
>>> sorted(report["phases"])
['demo.events', 'demo.work']
>>> report["phases"]["demo.events"]["calls"]
3
>>> profiling.active() is None
True
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from repro.server.stats import QueryStats

__all__ = [
    "PhaseStat",
    "Profiler",
    "active",
    "clock",
    "profile",
]

#: Wall clock used by every instrumentation site (re-exported so call
#: sites and docs agree on the clock).
clock = perf_counter


@dataclass
class PhaseStat:
    """Aggregate of one named phase: how often, and how long in total."""

    calls: int = 0
    seconds: float = 0.0


#: Canonical seam order of the pipeline's phase prefixes: a query flows
#: client -> server -> runtime orchestration, and the ``--profile``
#: table prints in that order (see :meth:`Profiler.format`).
_SEAM_PREFIXES = ("client.", "server.", "runtime.")


def _seam_order(name: str) -> tuple[int, str]:
    """Sort key placing a phase in its pipeline seam, then by name."""
    for rank, prefix in enumerate(_SEAM_PREFIXES):
        if name.startswith(prefix):
            return (rank, name)
    return (len(_SEAM_PREFIXES), name)


class Profiler:
    """Aggregates per-phase counters and timers across session threads.

    Instrumentation sites call :meth:`record` (timed phases) or
    :meth:`count` (pure counters); :meth:`report` renders the aggregate
    as a deterministic-shape dict, optionally folding in the per-phase
    *query* costs that :class:`repro.server.stats.QueryStats` already
    tracks -- wall-clock seconds and query counts side by side is
    exactly the view the paper's cost model lacks.

    Examples
    --------
    >>> prof = Profiler()
    >>> prof.record("engine.top", 0.25)
    >>> prof.record("engine.top", 0.75)
    >>> prof.phases()["engine.top"]
    PhaseStat(calls=2, seconds=1.0)
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._phases: dict[str, PhaseStat] = {}

    # ------------------------------------------------------------------
    def record(self, phase: str, seconds: float, calls: int = 1) -> None:
        """Add ``seconds`` of wall clock (and ``calls`` events) to a phase."""
        with self._lock:
            stat = self._phases.get(phase)
            if stat is None:
                stat = self._phases[phase] = PhaseStat()
            stat.calls += calls
            stat.seconds += seconds

    def count(self, phase: str, events: int = 1) -> None:
        """Bump a pure counter phase (no wall clock attached)."""
        self.record(phase, 0.0, events)

    # ------------------------------------------------------------------
    def phases(self) -> dict[str, PhaseStat]:
        """Snapshot of the per-phase aggregates, keyed in sorted order."""
        with self._lock:
            return {
                name: PhaseStat(stat.calls, stat.seconds)
                for name, stat in sorted(self._phases.items())
            }

    def report(self, stats: "QueryStats | None" = None) -> dict:
        """The aggregate as a deterministic-shape dict.

        The top-level keys are always ``{"phases"}``, plus
        ``{"queries", "query_phases"}`` when a :class:`QueryStats` is
        given (the ``QueryStats`` extension of the seam: its per-phase
        *query* counts join the profiler's per-phase *seconds*).  Phase
        keys are sorted; each phase maps to ``{"calls", "seconds"}``.
        """
        report: dict = {
            "phases": {
                name: {"calls": stat.calls, "seconds": stat.seconds}
                for name, stat in self.phases().items()
            }
        }
        if stats is not None:
            snapshot = stats.snapshot()
            report["queries"] = snapshot.queries
            report["query_phases"] = dict(
                sorted(snapshot.phase_costs.items())
            )
        return report

    def format(self, stats: "QueryStats | None" = None) -> str:
        """Render :meth:`report` as an aligned text table (CLI output).

        Rows follow the pipeline's seam order (``client.*`` before
        ``server.*`` before ``runtime.*``, alphabetical within a seam
        and for unknown prefixes after them), never first-hit order --
        so two ``--profile`` runs of the same workload print the same
        table shape regardless of which phase happened to record
        first.  :meth:`report` keeps plain sorted keys; the seam order
        is presentation only.
        """
        report = self.report(stats)
        lines = ["phase                          calls      seconds"]
        for name in sorted(report["phases"], key=_seam_order):
            stat = report["phases"][name]
            lines.append(
                f"{name:<30} {stat['calls']:>6} {stat['seconds']:>12.6f}"
            )
        query_phases: Mapping[str, int] = report.get("query_phases", {})
        if query_phases:
            lines.append("query phase                          queries")
            for name, queries in query_phases.items():
                lines.append(f"{name:<30} {queries:>12}")
        if "queries" in report:
            lines.append(f"total queries: {report['queries']}")
        return "\n".join(lines)

    def merge(self, other: "Profiler") -> None:
        """Fold another profiler's aggregates into this one."""
        for name, stat in other.phases().items():
            self.record(name, stat.seconds, stat.calls)


# ----------------------------------------------------------------------
# Module-level activation: the one global every hot-path site checks.
# ----------------------------------------------------------------------
_ACTIVE: Profiler | None = None
_activation_lock = threading.Lock()


def active() -> Profiler | None:
    """The currently installed profiler, or ``None`` (the common case)."""
    return _ACTIVE


@contextmanager
def profile(profiler: Profiler | None = None) -> Iterator[Profiler]:
    """Install a profiler for the duration of the ``with`` block.

    Activation is process-global (every session thread records into the
    same profiler) and re-entrant: the previous profiler, if any, is
    restored on exit.

    Examples
    --------
    >>> from repro.crawl import profiling
    >>> with profiling.profile() as prof:
    ...     profiling.active() is prof
    True
    """
    global _ACTIVE
    if profiler is None:
        profiler = Profiler()
    with _activation_lock:
        previous = _ACTIVE
        _ACTIVE = profiler
    try:
        yield profiler
    finally:
        with _activation_lock:
            _ACTIVE = previous
