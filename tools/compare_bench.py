#!/usr/bin/env python3
"""Benchmark regression gate: compare a run against a committed baseline.

The benchmark suite writes machine-readable reports
(``BENCH_executors.json``, ``BENCH_subtree_sharding.json``); CI used to
upload them as artifacts nobody compared.  This tool closes the loop:
it compares the *speedup ratios* of a fresh run against the committed
baseline under ``benchmarks/baselines/`` and fails when a ratio
regressed by more than the tolerance (default 25%).

Ratios, not seconds: absolute wall-clock times differ wildly between a
laptop and a CI runner, but "the process backend is X times faster than
threads" and "subtree sharding is X times faster than whole-region
stealing" are properties of the code.  Metrics that only mean anything
on several cores (everything measured against the GIL) are skipped
unless *both* the baseline and the current run saw >= 2 CPUs, so a
single-core baseline never produces a vacuous pass-or-fail against a
multi-core runner -- the skip is printed, never silent.

Usage::

    python tools/compare_bench.py \
        --baseline benchmarks/baselines/BENCH_executors.json \
        --current BENCH_executors.json

    # refresh a committed baseline from the current run
    python tools/compare_bench.py --baseline ... --current ... --update
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

#: Gated metrics, by dotted path into the report dict, with the
#: conditions under which a comparison is meaningful.  ``direction``
#: is ``"higher"`` (default; speedup ratios) or ``"lower"`` (counts
#: where growth is the regression, e.g. coordinator round trips).
METRICS: dict[str, dict] = {
    "process_over_thread": {"min_cpus": 2},
    "speedup_vs_sequential.thread": {"min_cpus": 2},
    "speedup_vs_sequential.process": {"min_cpus": 2},
    "speedup_vs_sequential.async": {"min_cpus": 2},
    "sharding_over_region_stealing": {},
    # Shared-limit control-plane chatter: more round trips than the
    # baseline means per-query admission crept back in.
    "coordinator_round_trips": {"direction": "lower"},
    # Lease batching's round-trip win over per-query admission.
    "round_trip_reduction": {},
    # Queries a resume from a complete checkpoint re-issues; the
    # baseline is 0 and any growth means resume re-crawls finished
    # regions.
    "reissued_on_resume": {"direction": "lower"},
    # Job-service throughput under contention (8 tenants over a
    # 4-worker fleet, latency-dominated so the ratio is a scheduler
    # property, not a host property).
    "jobs_per_sec": {},
    # The fairness tail: submission to first committed row, worst
    # tenant.  Growth means the rotation stopped protecting late
    # tenants from earlier jobs' queues.
    "p99_time_to_first_row_s": {"direction": "lower"},
    # The service's multi-core win: the CPU-bound tenant burst under
    # backend=process vs backend=thread.  Only meaningful off the
    # GIL's one core, like every other process-vs-thread ratio.
    "service_process_over_thread": {"min_cpus": 2},
    # Per-backend throughput of the CPU-bound burst; the thread side
    # is GIL-bound and comparable on any host.
    "backends.thread.jobs_per_sec": {},
    "backends.process.jobs_per_sec": {"min_cpus": 2},
    # Single-core hot path (BENCH_hot_path.json).  The speedup of the
    # compiled inner loop over the frozen interpreted reference is a
    # property of the code and gates on any host; sequential
    # queries/sec is throughput on one core -- same-class CI runners
    # keep it within tolerance, and a host change is what the
    # refresh procedure in docs/performance.md is for.
    "hot_path_speedup": {"min_cpus": 1},
    "queries_per_sec": {"min_cpus": 1},
    # Battery batching: one full DFS crawl with sibling batteries
    # (shared engine context, one lock acquisition, merged accounting)
    # vs the per-query loop, byte-identical results asserted in-bench.
    # A drop means the epoch seam stopped sharing work.
    "battery_speedup": {"min_cpus": 1},
    "battery_queries_per_sec": {"min_cpus": 1},
    # Pickled process payload of the workload's per-session sources
    # (both the hot-path and the service report carry one).  Growth
    # means rebuildable engine caches or duplicate matrices crept back
    # into what every pool worker receives.
    "payload_bytes": {"direction": "lower"},
}


def lookup(report: dict, dotted: str):
    """Resolve a dotted path in a nested dict; ``None`` when absent."""
    node = report
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def compare(
    baseline: dict, current: dict, tolerance: float
) -> tuple[list[str], list[str]]:
    """(regressions, notes) from comparing every applicable metric."""
    regressions: list[str] = []
    notes: list[str] = []
    baseline_cpus = int(baseline.get("cpu_count") or 1)
    current_cpus = int(current.get("cpu_count") or 1)
    if baseline.get("scale") != current.get("scale"):
        notes.append(
            f"note: scale differs (baseline {baseline.get('scale')}, "
            f"current {current.get('scale')}); ratios are still compared"
        )
    for metric, requirements in METRICS.items():
        expected = lookup(baseline, metric)
        measured = lookup(current, metric)
        if expected is None or measured is None:
            continue  # metric not in this report pair
        if not isinstance(expected, (int, float)) or not isinstance(
            measured, (int, float)
        ):
            # A nested breakdown under the metric's name (e.g. the
            # lease report's per-mode round-trip counts); the gate
            # compares only scalar summaries.
            continue
        min_cpus = requirements.get("min_cpus", 1)
        if min(baseline_cpus, current_cpus) < min_cpus:
            notes.append(
                f"skip {metric}: needs >= {min_cpus} CPUs on both sides "
                f"(baseline {baseline_cpus}, current {current_cpus})"
            )
            continue
        if requirements.get("direction", "higher") == "lower":
            ceiling = expected * (1 + tolerance)
            regressed = measured > ceiling
            notes.append(
                f"{'REGRESSION' if regressed else 'ok'} {metric}: "
                f"baseline {expected:.2f}, current {measured:.2f} "
                f"(ceiling {ceiling:.2f}, lower is better)"
            )
        else:
            floor = expected * (1 - tolerance)
            regressed = measured < floor
            notes.append(
                f"{'REGRESSION' if regressed else 'ok'} {metric}: "
                f"baseline {expected:.2f}x, current {measured:.2f}x "
                f"(floor {floor:.2f}x)"
            )
        if regressed:
            regressions.append(metric)
    return regressions, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/compare_bench.py",
        description="Fail when a benchmark speedup regressed vs baseline.",
    )
    parser.add_argument(
        "--baseline", required=True, help="committed baseline JSON"
    )
    parser.add_argument(
        "--current", required=True, help="freshly measured JSON"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional regression (default: 0.25)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="overwrite the baseline with the current report instead "
        "of comparing",
    )
    args = parser.parse_args(argv)
    current_path = Path(args.current)
    baseline_path = Path(args.baseline)
    if not current_path.exists():
        print(f"error: current report {current_path} missing")
        return 2
    if args.update:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(current_path, baseline_path)
        print(f"baseline updated: {baseline_path}")
        return 0
    if not baseline_path.exists():
        print(f"error: baseline {baseline_path} missing (--update to seed)")
        return 2
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    current = json.loads(current_path.read_text(encoding="utf-8"))
    regressions, notes = compare(baseline, current, args.tolerance)
    print(f"compare {current_path} vs {baseline_path}:")
    for note in notes:
        print(f"  {note}")
    if regressions:
        print(
            f"benchmark regression(s) beyond {args.tolerance:.0%}: "
            + ", ".join(regressions)
        )
        print(
            f"  compared against: {baseline_path} "
            f"(baseline cpu_count {baseline.get('cpu_count')}, "
            f"current cpu_count {current.get('cpu_count')})"
        )
        print(
            "  if the host class changed rather than the code, refresh "
            "the baseline (see docs/performance.md): "
            f"python tools/compare_bench.py --baseline {baseline_path} "
            f"--current {current_path} --update"
        )
        return 1
    print("benchmark gate: no regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
