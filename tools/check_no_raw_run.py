#!/usr/bin/env python3
"""Static check: crawler algorithms must not bypass the query helpers.

Every query an algorithm issues has to flow through
``Crawler._run_query`` / ``Crawler._run_battery`` (``src/repro/crawl/
base.py``): those helpers enforce the ``max_queries`` sanity cap, keep
the progress curve (Figure 13) honest, and route sibling queries
through one batch epoch.  A direct ``self._client.run(...)`` (or
``crawler.client.run_batch(...)``) inside an algorithm module silently
skips all three -- the kind of regression that passes every result
test and only shows up as a wrong progress curve or an uncapped
runaway crawl.

This tool walks the ASTs of every module under ``src/repro/crawl/``
except ``base.py`` (where the helpers live, and the one legitimate
call site) and fails on any ``<expr>.client.run(...)``,
``<expr>._client.run(...)`` or the ``run_batch`` equivalents.  It is
wired into CI's lint job and ``tests/test_tools.py`` pins that it
stays green on the current tree and actually fires on a violation.

Usage::

    python tools/check_no_raw_run.py            # checks src/repro/crawl
    python tools/check_no_raw_run.py PATH...    # explicit files/dirs
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Modules that hold the sanctioned call sites.
ALLOWED_FILES = {"base.py"}

#: Attribute names that designate the query client on a crawler.
CLIENT_ATTRS = {"client", "_client"}

#: Methods that issue queries and must go through the base helpers.
RUN_METHODS = {"run", "run_batch"}


def violations_in(path: Path) -> list[tuple[int, str]]:
    """(line, rendered call) for every raw client run call in ``path``."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    found: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in RUN_METHODS):
            continue
        target = func.value
        if isinstance(target, ast.Attribute) and target.attr in CLIENT_ATTRS:
            found.append((node.lineno, ast.unparse(func)))
        elif isinstance(target, ast.Name) and target.id in CLIENT_ATTRS:
            found.append((node.lineno, ast.unparse(func)))
    return found


def check(paths: list[Path]) -> list[str]:
    """Human-readable violation lines for every file under ``paths``."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    problems: list[str] = []
    for file in files:
        if file.name in ALLOWED_FILES:
            continue
        for line, call in violations_in(file):
            problems.append(
                f"{file}:{line}: raw client call `{call}(...)`; route it "
                "through Crawler._run_query / Crawler._run_battery"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    paths = (
        [Path(arg) for arg in args]
        if args
        else [Path("src/repro/crawl")]
    )
    problems = check(paths)
    for problem in problems:
        print(problem)
    if problems:
        print(
            f"check_no_raw_run: {len(problems)} raw client call(s); "
            "algorithms must use the base-class query helpers"
        )
        return 1
    print("check_no_raw_run: no raw client calls outside base.py")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
