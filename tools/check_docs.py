#!/usr/bin/env python3
"""Docs smoke check: the README's code cannot drift from the code.

Three passes, any failure is fatal:

1. ``doctest`` over the markdown docs -- every ``>>>`` example in
   ``README.md``, ``docs/architecture.md`` and ``docs/performance.md``
   runs and must produce its printed output.
2. Every fenced ```` ```bash ```` block in ``README.md`` is executed
   line by line in a scratch directory (with ``src/`` on
   ``PYTHONPATH``), exactly as a reader would paste it.  Blocks fenced
   ```` ```sh ```` are install/test instructions and are *not* run
   here (CI runs the test suite in its own job).
3. Every fenced ```` ```python ```` block in ``README.md`` is executed
   as a script in the same scratch directory.

Run locally::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import doctest
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOCTEST_DOCS = ["README.md", "docs/architecture.md", "docs/performance.md"]
EXEC_DOCS = ["README.md"]
FENCE = re.compile(r"^```(\w+)\s*$")


def extract_blocks(path: Path) -> list[tuple[str, str]]:
    """(language, body) for every fenced code block in a markdown file."""
    blocks: list[tuple[str, str]] = []
    language: str | None = None
    body: list[str] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        if language is None:
            match = FENCE.match(line)
            if match:
                language = match.group(1)
                body = []
        elif line.strip() == "```":
            blocks.append((language, "\n".join(body)))
            language = None
        else:
            body.append(line)
    return blocks


def run_doctests() -> int:
    failures = 0
    for name in DOCTEST_DOCS:
        path = REPO / name
        result = doctest.testfile(
            str(path),
            module_relative=False,
            optionflags=doctest.NORMALIZE_WHITESPACE,
        )
        print(
            f"doctest {name}: {result.attempted} examples, "
            f"{result.failed} failures"
        )
        failures += result.failed
    return failures


def run_snippets() -> int:
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    failures = 0
    with tempfile.TemporaryDirectory(prefix="repro-docs-") as scratch:
        for name in EXEC_DOCS:
            for language, body in extract_blocks(REPO / name):
                if language == "bash":
                    commands = [
                        line
                        for line in body.splitlines()
                        if line.strip() and not line.strip().startswith("#")
                    ]
                elif language == "python":
                    commands = None  # whole block, below
                else:
                    continue
                if language == "python":
                    print(f"[{name}] python block ({len(body)} chars)")
                    proc = subprocess.run(
                        [sys.executable, "-"],
                        input=body,
                        text=True,
                        cwd=scratch,
                        env=env,
                    )
                    if proc.returncode != 0:
                        print(f"FAILED python block in {name}")
                        failures += 1
                    continue
                for command in commands:
                    print(f"[{name}] $ {command}")
                    proc = subprocess.run(
                        command, shell=True, cwd=scratch, env=env
                    )
                    if proc.returncode != 0:
                        print(f"FAILED ({proc.returncode}): {command}")
                        failures += 1
    return failures


def main() -> int:
    failures = run_doctests()
    failures += run_snippets()
    if failures:
        print(f"docs check: {failures} failure(s)")
        return 1
    print("docs check: all snippets green")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
